//! Network simulation configuration.

use crate::topology::Mesh;
use crate::traffic::TrafficPattern;
use router_core::{RouterConfig, Timing};
use runqueue::CancelToken;
use std::fmt;

/// Which router microarchitecture populates the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterKind {
    /// Wormhole with `buffers` flits of input buffering per port.
    Wormhole {
        /// Flit buffers per input port.
        buffers: usize,
    },
    /// Virtual cut-through (related-work baseline): packets advance only
    /// into buffers with room for the whole packet.
    VirtualCutThrough {
        /// Flit buffers per input port (should be ≥ the packet length).
        buffers: usize,
    },
    /// Non-speculative virtual-channel router.
    VirtualChannel {
        /// Virtual channels per port.
        vcs: usize,
        /// Flit buffers per VC.
        buffers_per_vc: usize,
    },
    /// Speculative virtual-channel router.
    SpeculativeVc {
        /// Virtual channels per port.
        vcs: usize,
        /// Flit buffers per VC.
        buffers_per_vc: usize,
    },
}

impl RouterKind {
    /// The router-core configuration for a router with `ports` ports.
    #[must_use]
    pub fn router_config(&self, ports: usize) -> RouterConfig {
        match *self {
            RouterKind::Wormhole { buffers } => RouterConfig::wormhole(ports, buffers),
            RouterKind::VirtualCutThrough { buffers } => {
                RouterConfig::virtual_cut_through(ports, buffers)
            }
            RouterKind::VirtualChannel {
                vcs,
                buffers_per_vc,
            } => RouterConfig::virtual_channel(ports, vcs, buffers_per_vc),
            RouterKind::SpeculativeVc {
                vcs,
                buffers_per_vc,
            } => RouterConfig::speculative(ports, vcs, buffers_per_vc),
        }
    }

    /// Flit buffers per input VC.
    #[must_use]
    pub fn buffers_per_vc(&self) -> usize {
        match *self {
            RouterKind::Wormhole { buffers } | RouterKind::VirtualCutThrough { buffers } => buffers,
            RouterKind::VirtualChannel { buffers_per_vc, .. }
            | RouterKind::SpeculativeVc { buffers_per_vc, .. } => buffers_per_vc,
        }
    }

    /// Virtual channels per port.
    #[must_use]
    pub fn vcs(&self) -> usize {
        match *self {
            RouterKind::Wormhole { .. } | RouterKind::VirtualCutThrough { .. } => 1,
            RouterKind::VirtualChannel { vcs, .. } | RouterKind::SpeculativeVc { vcs, .. } => vcs,
        }
    }

    /// Figure-legend label, e.g. `VC (2vcsX4bufs)`.
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            RouterKind::Wormhole { buffers } => format!("WH ({buffers} bufs)"),
            RouterKind::VirtualCutThrough { buffers } => format!("VCT ({buffers} bufs)"),
            RouterKind::VirtualChannel {
                vcs,
                buffers_per_vc,
            } => format!("VC ({vcs}vcsX{buffers_per_vc}bufs)"),
            RouterKind::SpeculativeVc {
                vcs,
                buffers_per_vc,
            } => format!("specVC ({vcs}vcsX{buffers_per_vc}bufs)"),
        }
    }
}

impl fmt::Display for RouterKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Which simulation engine advances the network.
///
/// All engines produce **bit-identical** results — the event-driven
/// engine only skips work that is provably a no-op (quiescent routers,
/// channels with nothing due), and the sharded-parallel engine only
/// reorders operations that provably commute, replaying every
/// order-sensitive accumulation serially in node order. The equivalence
/// is enforced by the differential harness in
/// `tests/engine_equivalence.rs`, which runs the engines across router
/// kinds, topologies, traffic patterns, loads, and shard counts and
/// asserts identical measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Tick every router every cycle (the reference engine; simple,
    /// obviously correct, O(nodes) per cycle regardless of load).
    CycleDriven,
    /// Tick only routers with work pending, waking them on flit delivery
    /// (the default: at the low loads that dominate a latency–throughput
    /// sweep, most routers are idle in most cycles).
    #[default]
    EventDriven,
    /// Partition the mesh into contiguous shards and run lockstep rounds
    /// of **one** gate-barrier episode each: while the workers are
    /// parked at the gate, the coordinator commits measurement state in
    /// fixed node order and decides whether globally quiescent cycles
    /// can be fast-forwarded (every shard votes its earliest future
    /// work); the released round then runs delivery, sources, and router
    /// ticks as one fused parallel phase, exchanging boundary
    /// flits/credits through preallocated per-shard-pair mailboxes
    /// stamped at emission time. Results are bit-identical to the serial
    /// engines for any shard count, thread schedule, and
    /// [`BarrierKind`] (see [`crate::shard`]).
    ParallelShards {
        /// Worker shards (≥ 1; clamped to the node count). Each shard
        /// runs on its own thread during [`crate::sim::Network::run`].
        shards: usize,
    },
}

impl EngineKind {
    /// The sharded-parallel engine with `shards` worker shards.
    #[must_use]
    pub fn parallel(shards: usize) -> Self {
        EngineKind::ParallelShards { shards }
    }

    /// How many threads one simulation run occupies under this engine
    /// (1 for the serial engines).
    #[must_use]
    pub fn threads_per_run(&self) -> usize {
        match *self {
            EngineKind::CycleDriven | EngineKind::EventDriven => 1,
            EngineKind::ParallelShards { shards } => shards.max(1),
        }
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineKind::CycleDriven => write!(f, "cycle-driven"),
            EngineKind::EventDriven => write!(f, "event-driven"),
            EngineKind::ParallelShards { shards } => write!(f, "parallel-shards({shards})"),
        }
    }
}

/// Which barrier implementation synchronizes the sharded-parallel
/// engine's per-cycle gate. Purely a performance knob: results are
/// bit-identical for either kind (enforced by
/// `tests/engine_equivalence.rs`), so it is excluded from
/// [`crate::orchestrate`]'s config hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BarrierKind {
    /// A single shared arrival counter with sense reversal. O(parties)
    /// contention on one cache line per episode; fastest at small shard
    /// counts.
    #[default]
    Spin,
    /// A sense-reversing combining tree: each party spins on its own
    /// flag and arrivals propagate up a binary tree, so no cache line is
    /// contended by more than a constant number of parties. Wins when
    /// shard counts grow past the point where the shared counter
    /// serializes.
    Tree,
}

impl fmt::Display for BarrierKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BarrierKind::Spin => write!(f, "spin"),
            BarrierKind::Tree => write!(f, "tree"),
        }
    }
}

/// Which routing algorithm the network uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingAlgo {
    /// Dimension-ordered routing (the paper's choice; deadlock-free on a
    /// mesh, and on a torus when combined with dateline VC classes).
    #[default]
    DimensionOrdered,
    /// West-first turn-model minimal adaptive routing (extension;
    /// 2-D mesh only).
    WestFirstAdaptive,
    /// Negative-first turn-model minimal adaptive routing (extension;
    /// the Glass–Ni turn model, deadlock-free on a k-ary n-mesh of any
    /// dimension count — the n-D generalization of minimal adaptivity).
    NegativeFirstAdaptive,
}

impl fmt::Display for RoutingAlgo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutingAlgo::DimensionOrdered => write!(f, "dimension-ordered"),
            RoutingAlgo::WestFirstAdaptive => write!(f, "west-first adaptive"),
            RoutingAlgo::NegativeFirstAdaptive => write!(f, "negative-first adaptive"),
        }
    }
}

/// Why a [`NetworkConfig`] cannot be simulated, with enough context to
/// fix it. Produced by [`NetworkConfig::validate`] and returned by
/// [`crate::sim::Network::try_new`]; every variant names the offending
/// value and the change that makes the configuration valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// A torus with fewer than two VCs per port: the dateline
    /// deadlock-avoidance scheme needs two VC classes per ring.
    TorusNeedsDatelineVcs {
        /// The configured VC count.
        vcs: usize,
    },
    /// West-first adaptive routing outside its 2-D-mesh domain.
    WestFirstNeedsTwoDimMesh {
        /// The configured dimension count.
        dims: usize,
        /// Whether wraparound links were requested.
        torus: bool,
    },
    /// A turn-model adaptive algorithm on a torus, whose wraparound
    /// links reintroduce the channel-dependency cycles turn models
    /// eliminate.
    AdaptiveOnTorus {
        /// The requested algorithm.
        algo: RoutingAlgo,
    },
    /// More dimensions than the adaptive candidate encoding supports.
    TooManyAdaptiveDims {
        /// The configured dimension count.
        dims: usize,
    },
    /// A radix beyond the route table's one-byte coordinate encoding.
    RadixTooLarge {
        /// The configured radix.
        radix: usize,
    },
    /// A zero-cycle rebalance epoch: the work meter needs at least one
    /// executed cycle per decision window.
    RebalanceEpochZero,
    /// A zero-cycle telemetry epoch: snapshots are taken at multiples
    /// of the epoch, so it must cover at least one cycle.
    TelemetryEpochZero,
    /// A rebalance threshold below 1.0 (or NaN): the trigger is a
    /// `work_max / work_mean` ratio, whose floor is 1.0 at perfect
    /// balance, so any lower threshold would fire on every epoch.
    RebalanceThresholdBelowOne,
    /// A fault targeting a node the mesh does not have.
    FaultNodeOutOfRange {
        /// Index of the offending spec in [`NetworkConfig::faults`].
        index: usize,
        /// The out-of-range node id.
        node: usize,
        /// Nodes in the configured mesh.
        nodes: usize,
    },
    /// A link fault naming a port the routers do not have.
    FaultPortOutOfRange {
        /// Index of the offending spec in [`NetworkConfig::faults`].
        index: usize,
        /// The out-of-range port.
        port: usize,
        /// Ports per router in the configured mesh (local included).
        ports: usize,
    },
    /// A link fault on a mesh-edge port with no link behind it.
    FaultLinkMissing {
        /// Index of the offending spec in [`NetworkConfig::faults`].
        index: usize,
        /// Upstream node of the named link.
        node: usize,
        /// The unwired port.
        port: usize,
    },
    /// A flaky fault whose duty cycle is degenerate: the constraint is
    /// `1 <= down < period` and `phase < period`, so the link is down
    /// for part of every period and up for the rest.
    FaultFlakyDuty {
        /// Index of the offending spec in [`NetworkConfig::faults`].
        index: usize,
        /// The configured period.
        period: u32,
        /// The configured down window.
        down: u32,
        /// The configured phase offset.
        phase: u32,
    },
    /// A lossy fault whose probability is not a finite value in [0, 1].
    FaultLossProbInvalid {
        /// Index of the offending spec in [`NetworkConfig::faults`].
        index: usize,
    },
    /// Two flaky (or two lossy) faults landing on the same directed
    /// link, whose merge semantics would be ambiguous.
    FaultDuplicate {
        /// Index of the *second* spec in [`NetworkConfig::faults`].
        index: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ConfigError::TorusNeedsDatelineVcs { vcs } => write!(
                f,
                "a torus needs >= 2 VCs per port for the dateline deadlock-avoidance \
                 classes, got {vcs}; use a VirtualChannel or SpeculativeVc router with \
                 vcs >= 2, or drop the wraparound links (mesh)"
            ),
            ConfigError::WestFirstNeedsTwoDimMesh { dims, torus } => write!(
                f,
                "west-first adaptive routing is defined for 2-D meshes, got a {dims}-D \
                 {}; use RoutingAlgo::NegativeFirstAdaptive for n-D meshes or \
                 RoutingAlgo::DimensionOrdered for any topology",
                if torus { "torus" } else { "mesh" }
            ),
            ConfigError::AdaptiveOnTorus { algo } => write!(
                f,
                "{algo} routing is defined for meshes only (wraparound links break the \
                 turn model's deadlock freedom); use RoutingAlgo::DimensionOrdered, \
                 whose dateline VC classes handle the torus"
            ),
            ConfigError::TooManyAdaptiveDims { dims } => write!(
                f,
                "adaptive routing supports at most {} dimensions, got {dims}; use \
                 RoutingAlgo::DimensionOrdered for higher-dimensional meshes",
                crate::routing::MAX_CANDIDATES
            ),
            ConfigError::RadixTooLarge { radix } => write!(
                f,
                "radix {radix} exceeds the route table's one-byte coordinate encoding \
                 (max 256 nodes per dimension); add a dimension instead"
            ),
            ConfigError::RebalanceEpochZero => write!(
                f,
                "rebalance epoch is 0; the work meter needs at least one executed \
                 cycle per decision window — use with_rebalance(epoch >= 1, ..) or \
                 drop the rebalance knob"
            ),
            ConfigError::RebalanceThresholdBelowOne => write!(
                f,
                "rebalance threshold must be a work_max/work_mean ratio >= 1.0 \
                 (1.0 = repartition on any imbalance; f64::INFINITY = meter but \
                 never repartition); got a value below 1.0 or NaN"
            ),
            ConfigError::TelemetryEpochZero => write!(
                f,
                "telemetry epoch is 0; snapshots are taken every `epoch` simulated \
                 cycles — use with_telemetry(epoch >= 1) or drop the telemetry knob"
            ),
            ConfigError::FaultNodeOutOfRange { index, node, nodes } => write!(
                f,
                "faults[{index}] targets node {node}, but the mesh has nodes \
                 0..{nodes}; fix the node id or grow the mesh"
            ),
            ConfigError::FaultPortOutOfRange { index, port, ports } => write!(
                f,
                "faults[{index}] targets port {port}, but routers have ports \
                 0..{ports} (port 2d = dimension d positive, 2d+1 negative, \
                 {} = local/ejection)",
                ports - 1
            ),
            ConfigError::FaultLinkMissing { index, node, port } => write!(
                f,
                "faults[{index}] targets the link out of node {node} through \
                 port {port}, but that port is unwired (mesh edge); pick an \
                 interior link or switch to a torus"
            ),
            ConfigError::FaultFlakyDuty {
                index,
                period,
                down,
                phase,
            } => write!(
                f,
                "faults[{index}] has a degenerate flaky duty cycle \
                 period={period} down={down} phase={phase}; the constraint is \
                 1 <= down < period and phase < period (use dead@CYCLE for an \
                 always-down link)"
            ),
            ConfigError::FaultLossProbInvalid { index } => write!(
                f,
                "faults[{index}] has a loss probability outside [0, 1] (or \
                 NaN/inf); use 1.0 to drop everything or dead@CYCLE to kill \
                 the link"
            ),
            ConfigError::FaultDuplicate { index } => write!(
                f,
                "faults[{index}] lands a second flaky (or lossy) fault on a \
                 directed link that already has one — the merge would be \
                 ambiguous; combine them into one spec (dead faults may \
                 overlap freely: the earliest kill wins)"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Work-metered dynamic shard rebalancing for
/// [`EngineKind::ParallelShards`] (see `shard.rs` for the mechanism).
/// Every `epoch` *executed* cycles the engine folds per-node work
/// counters into EWMAs; when the per-shard `work_max / work_mean` ratio
/// exceeds `threshold`, the partition is re-cut along weighted row seams
/// and in-flight state migrates to the new owners. All inputs are pure
/// functions of simulation state, so results stay bit-identical to the
/// serial engines — the knob trades wall-clock, never correctness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalanceConfig {
    /// Decision window in executed cycles (≥ 1). Executed cycles — not
    /// simulated cycles — so quiescence fast-forwards do not starve the
    /// meter, and the count is identical for every shard layout.
    pub epoch: u64,
    /// Imbalance trigger: repartition when `work_max / work_mean`
    /// exceeds this ratio (≥ 1.0). `f64::INFINITY` meters the imbalance
    /// without ever repartitioning — the "before" measurement.
    pub threshold: f64,
}

/// Epoch-streaming telemetry for every engine (see `sim.rs` for the
/// wiring). Every `epoch` simulated cycles the engine snapshots its
/// metrics registry into the run's taps and records per-flow latency
/// samples as they complete. All counter inputs are pure functions of
/// simulation state and snapshots are assembled in fixed shard order,
/// so the counter stream is bit-identical across engine kinds, shard
/// counts, thread schedules, and barrier kinds — and the knob itself
/// never changes simulation results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Snapshot period in simulated cycles (≥ 1). Simulated — not
    /// executed — cycles, so the boundary set is identical whether an
    /// engine fast-forwards through quiescence or steps through it.
    pub epoch: u64,
}

/// When and how a scheduled fault manifests. Every kind is a pure
/// function of (configuration, seed, cycle) — no runtime randomness —
/// so faulted runs stay bit-identical across all three engines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Permanently dead from cycle `at` onward.
    Dead {
        /// First cycle the target is down (inclusive).
        at: u64,
    },
    /// Transient flapping: within each `period`-cycle window, the
    /// `down` cycles starting at offset `phase` are down
    /// (`(cycle - phase) mod period < down`), the rest are up.
    Flaky {
        /// Duty-cycle period in cycles (≥ 2).
        period: u32,
        /// Down cycles per period (`1 ≤ down < period`).
        down: u32,
        /// Offset of the down window within the period (`< period`).
        phase: u32,
    },
    /// The link stays up but drops each *packet* crossing it with
    /// probability `prob`, decided by a seeded hash of the packet id —
    /// deterministic, engine- and schedule-independent.
    Lossy {
        /// Per-packet drop probability in `[0, 1]`.
        prob: f64,
    },
}

/// What a [`FaultSpec`] applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// The directed link *out of* `node` through `port` (the reverse
    /// direction is a separate link: `Link { neighbor, opposite }`).
    /// `port == mesh.local_port()` names the node's ejection channel.
    Link {
        /// Upstream node of the directed link.
        node: usize,
        /// Output port the link hangs off.
        port: usize,
    },
    /// The whole router at `node`: the fault applies to every link
    /// incident to it, in both directions, including injection and
    /// ejection.
    Router {
        /// The faulted node.
        node: usize,
    },
}

/// One scheduled fault: a target and a kind. Build directly or parse
/// from the spec grammar with [`FaultSpec::parse`] /
/// [`parse_faults`]:
///
/// ```text
/// link:NODE:PORT:dead@CYCLE
/// link:NODE:PORT:flaky@PERIOD/DOWN[/PHASE]
/// link:NODE:PORT:loss@PROB
/// router:NODE:dead@CYCLE           (flaky/loss work on routers too)
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// The link or router the fault applies to.
    pub target: FaultTarget,
    /// When and how it manifests.
    pub kind: FaultKind,
}

impl FaultSpec {
    /// Parses one fault from the spec grammar (see [`FaultSpec`]).
    ///
    /// # Errors
    ///
    /// Returns a message naming the expected grammar on any syntax
    /// error. Range checks (node/port bounds, duty cycles, probability
    /// domain) are [`NetworkConfig::validate`]'s job, so a parsed spec
    /// still needs a mesh to be judged against.
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let s = s.trim();
        let mut parts = s.split(':');
        let scope = parts.next().unwrap_or("");
        let usize_field = |v: Option<&str>, what: &str| -> Result<usize, String> {
            v.ok_or_else(|| format!("fault `{s}`: missing {what}"))?
                .parse::<usize>()
                .map_err(|_| format!("fault `{s}`: {what} must be a non-negative integer"))
        };
        let target = match scope {
            "link" => FaultTarget::Link {
                node: usize_field(parts.next(), "node")?,
                port: usize_field(parts.next(), "port")?,
            },
            "router" => FaultTarget::Router {
                node: usize_field(parts.next(), "node")?,
            },
            _ => {
                return Err(format!(
                    "fault `{s}`: expected `link:NODE:PORT:KIND@ARGS` or \
                     `router:NODE:KIND@ARGS`"
                ))
            }
        };
        let kind_str = parts.next().ok_or_else(|| {
            format!("fault `{s}`: missing KIND@ARGS (dead@C, flaky@P/D[/PH], loss@PROB)")
        })?;
        if let Some(extra) = parts.next() {
            return Err(format!("fault `{s}`: unexpected trailing `:{extra}`"));
        }
        let (name, args) = kind_str
            .split_once('@')
            .ok_or_else(|| format!("fault `{s}`: kind `{kind_str}` needs `@ARGS`"))?;
        let kind = match name {
            "dead" => FaultKind::Dead {
                at: args
                    .parse::<u64>()
                    .map_err(|_| format!("fault `{s}`: dead@CYCLE needs an integer cycle"))?,
            },
            "flaky" => {
                let mut nums = args.split('/');
                let mut field = |what: &str| -> Result<u32, String> {
                    nums.next()
                        .ok_or_else(|| {
                            format!("fault `{s}`: flaky@PERIOD/DOWN[/PHASE] missing {what}")
                        })?
                        .parse::<u32>()
                        .map_err(|_| format!("fault `{s}`: flaky {what} must be an integer"))
                };
                let period = field("PERIOD")?;
                let down = field("DOWN")?;
                let phase = match nums.next() {
                    Some(p) => p
                        .parse::<u32>()
                        .map_err(|_| format!("fault `{s}`: flaky PHASE must be an integer"))?,
                    None => 0,
                };
                if nums.next().is_some() {
                    return Err(format!(
                        "fault `{s}`: flaky takes at most PERIOD/DOWN/PHASE"
                    ));
                }
                FaultKind::Flaky {
                    period,
                    down,
                    phase,
                }
            }
            "loss" => FaultKind::Lossy {
                prob: args
                    .parse::<f64>()
                    .map_err(|_| format!("fault `{s}`: loss@PROB needs a probability"))?,
            },
            _ => {
                return Err(format!(
                    "fault `{s}`: unknown kind `{name}` (expected dead, flaky, or loss)"
                ))
            }
        };
        Ok(FaultSpec { target, kind })
    }
}

impl fmt::Display for FaultSpec {
    /// The canonical spec-grammar form, parseable by [`FaultSpec::parse`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.target {
            FaultTarget::Link { node, port } => write!(f, "link:{node}:{port}:")?,
            FaultTarget::Router { node } => write!(f, "router:{node}:")?,
        }
        match self.kind {
            FaultKind::Dead { at } => write!(f, "dead@{at}"),
            FaultKind::Flaky {
                period,
                down,
                phase,
            } => write!(f, "flaky@{period}/{down}/{phase}"),
            FaultKind::Lossy { prob } => write!(f, "loss@{prob}"),
        }
    }
}

/// Parses a comma- or semicolon-separated fault list, e.g.
/// `"router:27:dead@500,link:28:2:flaky@64/16"`. Empty items are
/// ignored, so trailing separators are fine.
///
/// # Errors
///
/// The first syntactically invalid item's [`FaultSpec::parse`] message.
pub fn parse_faults(s: &str) -> Result<Vec<FaultSpec>, String> {
    s.split([',', ';'])
        .map(str::trim)
        .filter(|item| !item.is_empty())
        .map(FaultSpec::parse)
        .collect()
}

/// Full configuration of a network experiment.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Topology.
    pub mesh: Mesh,
    /// Routing algorithm.
    pub routing: RoutingAlgo,
    /// Simulation engine (cycle-driven reference or the event-driven
    /// active-set engine; results are identical).
    pub engine: EngineKind,
    /// Barrier implementation for the sharded-parallel engine's
    /// per-cycle gate (ignored by the serial engines; results are
    /// identical for either kind).
    pub barrier: BarrierKind,
    /// Router microarchitecture.
    pub router: RouterKind,
    /// Use single-cycle ("unit latency") routers instead of the pipelined
    /// model (the §5.2 baseline).
    pub single_cycle: bool,
    /// Flit propagation delay across a channel, in cycles (paper: 1).
    pub link_delay: u64,
    /// Credit propagation delay, in cycles (paper: 1; Figure 18 uses 4).
    pub credit_prop_delay: u64,
    /// Credit pipeline (processing) delay at the receiving router, in
    /// cycles (paper: 1).
    pub credit_proc_delay: u64,
    /// Flits per packet (paper: 5).
    pub packet_len: u32,
    /// Offered load as a fraction of network capacity, `> 0`.
    pub injection_fraction: f64,
    /// Traffic pattern.
    pub pattern: TrafficPattern,
    /// Warm-up cycles before measurement (paper: 10,000).
    pub warmup_cycles: u64,
    /// Number of tagged packets in the measurement sample
    /// (paper: 100,000).
    pub sample_packets: u64,
    /// Hard cycle limit; hitting it marks the run saturated.
    pub max_cycles: u64,
    /// RNG seed.
    pub seed: u64,
    /// Collect per-phase wall-clock attribution
    /// ([`crate::stats::PhaseNanos`]) while running. Off by default: the
    /// clock reads cost a few percent and change no simulation result.
    pub phase_timing: bool,
    /// Cooperative cancellation token, if the run belongs to a batch.
    /// [`crate::sim::Network::run`] polls it once per
    /// [`crate::sim::CANCEL_BATCH`] cycles and winds down early when it
    /// is poisoned (marking the result
    /// [`crate::sim::RunResult::cancelled`]); `None` costs nothing.
    pub cancel: Option<CancelToken>,
    /// Work-metered dynamic shard rebalancing for the sharded-parallel
    /// engine (ignored by the serial engines; results are identical
    /// either way). `None` (the default) keeps the static row-seam
    /// partition.
    pub rebalance: Option<RebalanceConfig>,
    /// Epoch-streaming telemetry (see [`TelemetryConfig`]): metric
    /// snapshots, per-flow latency percentiles, and — together with
    /// `phase_timing` — span traces. `None` (the default) allocates no
    /// registry and costs nothing; `Some` never changes simulation
    /// results, it only observes them.
    pub telemetry: Option<TelemetryConfig>,
    /// Scheduled link/router faults (see [`FaultSpec`]). Empty (the
    /// default) reproduces a healthy network bit for bit; a non-empty
    /// plan is still a pure function of (config, seed, cycle), so all
    /// three engines stay bit-identical under it. Unlike the engine
    /// knobs, faults *do* change results and are folded into the
    /// orchestration config hash.
    pub faults: Vec<FaultSpec>,
}

impl NetworkConfig {
    /// A k×k mesh with the paper's defaults (scaled-down sample sizes; use
    /// [`NetworkConfig::paper_scale`] for the full protocol).
    #[must_use]
    pub fn mesh(k: usize, router: RouterKind) -> Self {
        Self::for_mesh(Mesh::new(k, 2), router)
    }

    /// The same defaults on an arbitrary topology — any k-ary n-mesh or
    /// torus [`Mesh`] describes (e.g. `Mesh::new(4, 3)` for a 4-ary
    /// 3-cube with 7-port routers).
    #[must_use]
    pub fn for_mesh(mesh: Mesh, router: RouterKind) -> Self {
        NetworkConfig {
            mesh,
            routing: RoutingAlgo::DimensionOrdered,
            engine: EngineKind::default(),
            barrier: BarrierKind::default(),
            router,
            single_cycle: false,
            link_delay: 1,
            credit_prop_delay: 1,
            credit_proc_delay: 1,
            packet_len: 5,
            injection_fraction: 0.1,
            pattern: TrafficPattern::Uniform,
            warmup_cycles: 1_000,
            sample_packets: 2_000,
            max_cycles: 200_000,
            seed: 0x5EED,
            phase_timing: false,
            cancel: None,
            rebalance: None,
            telemetry: None,
            faults: Vec::new(),
        }
    }

    /// The paper's full measurement protocol: 8×8 mesh, 10,000 warm-up
    /// cycles, 100,000 tagged packets.
    #[must_use]
    pub fn paper_scale(router: RouterKind) -> Self {
        let mut cfg = Self::mesh(8, router);
        cfg.warmup_cycles = 10_000;
        cfg.sample_packets = 100_000;
        cfg.max_cycles = 2_000_000;
        cfg
    }

    /// Sets the offered load (fraction of capacity).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction`.
    #[must_use]
    pub fn with_injection(mut self, fraction: f64) -> Self {
        assert!(fraction > 0.0, "injection fraction must be positive");
        self.injection_fraction = fraction;
        self
    }

    /// Sets the warm-up length in cycles.
    #[must_use]
    pub fn with_warmup(mut self, cycles: u64) -> Self {
        self.warmup_cycles = cycles;
        self
    }

    /// Sets the tagged-sample size in packets.
    #[must_use]
    pub fn with_sample(mut self, packets: u64) -> Self {
        self.sample_packets = packets;
        self
    }

    /// Sets the hard cycle limit.
    #[must_use]
    pub fn with_max_cycles(mut self, cycles: u64) -> Self {
        self.max_cycles = cycles;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the simulation engine. Results do not depend on the choice
    /// (see [`EngineKind`]); wall-clock time does.
    #[must_use]
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Selects the barrier implementation for the sharded-parallel
    /// engine's per-cycle gate. Results do not depend on the choice (see
    /// [`BarrierKind`]); synchronization cost does.
    #[must_use]
    pub fn with_barrier(mut self, barrier: BarrierKind) -> Self {
        self.barrier = barrier;
        self
    }

    /// Enables per-phase wall-clock attribution (see
    /// [`crate::stats::PhaseNanos`]). Results are unaffected; the run
    /// gains clock reads and [`crate::sim::RunResult::phases`].
    #[must_use]
    pub fn with_phase_timing(mut self, on: bool) -> Self {
        self.phase_timing = on;
        self
    }

    /// Attaches a cooperative cancellation token. The run polls it at
    /// cycle-batch granularity ([`crate::sim::CANCEL_BATCH`] cycles) and
    /// stops early once it is poisoned; a cancelled run's result is
    /// flagged [`crate::sim::RunResult::cancelled`] and must not be
    /// recorded as a measurement.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Enables work-metered dynamic shard rebalancing for the
    /// sharded-parallel engine: every `epoch` executed cycles, if the
    /// per-shard `work_max / work_mean` ratio exceeds `threshold`, the
    /// partition is re-cut along weighted row seams. Results do not
    /// depend on the knob (see [`RebalanceConfig`]); wall-clock under
    /// non-uniform traffic does. Bounds (`epoch >= 1`,
    /// `threshold >= 1.0`) are checked by [`NetworkConfig::validate`]
    /// when the network is built, so builder order never matters.
    #[must_use]
    pub fn with_rebalance(mut self, epoch: u64, threshold: f64) -> Self {
        self.rebalance = Some(RebalanceConfig { epoch, threshold });
        self
    }

    /// Enables epoch-streaming telemetry: every `epoch` simulated
    /// cycles the run snapshots its metrics registry, and tagged
    /// packets feed per-flow latency percentiles
    /// ([`crate::sim::RunResult::flow_stats`]). Results do not depend
    /// on the knob (see [`TelemetryConfig`]); with `phase_timing` also
    /// on, the run additionally collects a span trace
    /// ([`crate::sim::RunResult::trace`]). The bound (`epoch >= 1`) is
    /// checked by [`NetworkConfig::validate`] when the network is
    /// built, so builder order never matters.
    #[must_use]
    pub fn with_telemetry(mut self, epoch: u64) -> Self {
        self.telemetry = Some(TelemetryConfig { epoch });
        self
    }

    /// Schedules link/router faults (replacing any earlier plan). Bounds
    /// and duty cycles are checked by [`NetworkConfig::validate`] when
    /// the network is built, so builder order never matters. An empty
    /// plan reproduces the healthy network bit for bit.
    #[must_use]
    pub fn with_faults(mut self, faults: Vec<FaultSpec>) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the credit propagation delay (Figure 18 sensitivity study).
    #[must_use]
    pub fn with_credit_prop_delay(mut self, cycles: u64) -> Self {
        self.credit_prop_delay = cycles;
        self
    }

    /// Switches to single-cycle ("unit latency") routers.
    #[must_use]
    pub fn with_single_cycle(mut self, on: bool) -> Self {
        self.single_cycle = on;
        self
    }

    /// Sets the traffic pattern.
    #[must_use]
    pub fn with_pattern(mut self, pattern: TrafficPattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// Converts the topology to a torus (wraparound links). Needs a VC
    /// or speculative-VC router with at least two VCs per port —
    /// dimension-ordered routing on a torus is made deadlock-free by the
    /// dateline VC classes (see `routing::dateline_vc_mask`). The
    /// requirement is checked by [`NetworkConfig::validate`] when the
    /// network is built, so builder order never matters.
    #[must_use]
    pub fn into_torus(mut self) -> Self {
        self.mesh = self.mesh.into_torus();
        self
    }

    /// Sets the routing algorithm. Domain restrictions (west-first needs
    /// a 2-D mesh; the turn models reject tori) are checked by
    /// [`NetworkConfig::validate`] when the network is built, so builder
    /// order never matters.
    #[must_use]
    pub fn with_routing(mut self, routing: RoutingAlgo) -> Self {
        self.routing = routing;
        self
    }

    /// Checks that the configuration describes a simulable network,
    /// reporting the first violation as a [`ConfigError`] whose message
    /// names the fix. [`crate::sim::Network::try_new`] calls this before
    /// building anything; call it directly to validate user input early.
    ///
    /// # Errors
    ///
    /// See [`ConfigError`] for the rejected combinations: a torus
    /// without dateline VCs, west-first outside a 2-D mesh, a turn model
    /// on a torus, and shapes beyond the route table's compact encoding.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.mesh.radix() > 256 {
            return Err(ConfigError::RadixTooLarge {
                radix: self.mesh.radix(),
            });
        }
        if self.mesh.is_torus() && self.router.vcs() < 2 {
            return Err(ConfigError::TorusNeedsDatelineVcs {
                vcs: self.router.vcs(),
            });
        }
        match self.routing {
            RoutingAlgo::DimensionOrdered => {}
            RoutingAlgo::WestFirstAdaptive => {
                if self.mesh.dims() != 2 || self.mesh.is_torus() {
                    return Err(ConfigError::WestFirstNeedsTwoDimMesh {
                        dims: self.mesh.dims(),
                        torus: self.mesh.is_torus(),
                    });
                }
            }
            RoutingAlgo::NegativeFirstAdaptive => {
                if self.mesh.is_torus() {
                    return Err(ConfigError::AdaptiveOnTorus { algo: self.routing });
                }
                if self.mesh.dims() > crate::routing::MAX_CANDIDATES {
                    return Err(ConfigError::TooManyAdaptiveDims {
                        dims: self.mesh.dims(),
                    });
                }
            }
        }
        if let Some(rb) = self.rebalance {
            if rb.epoch == 0 {
                return Err(ConfigError::RebalanceEpochZero);
            }
            // NaN must be rejected explicitly: a plain `< 1.0` check
            // would let it through and poison every later comparison.
            if rb.threshold.is_nan() || rb.threshold < 1.0 {
                return Err(ConfigError::RebalanceThresholdBelowOne);
            }
        }
        if let Some(t) = self.telemetry {
            if t.epoch == 0 {
                return Err(ConfigError::TelemetryEpochZero);
            }
        }
        self.validate_faults()
    }

    /// The fault-plan half of [`NetworkConfig::validate`]: bounds, duty
    /// cycles, probability domains, and per-link kind uniqueness.
    fn validate_faults(&self) -> Result<(), ConfigError> {
        if self.faults.is_empty() {
            return Ok(());
        }
        let nodes = self.mesh.nodes();
        let ports = self.mesh.ports();
        let local = self.mesh.local_port();
        // Directed-link occupancy for the flaky/lossy ambiguity check:
        // key = node * (ports + 1) + port, with one pseudo-port past the
        // real ones for a node's injection channel (reachable only
        // through router-wide targets). Dead faults may overlap freely
        // (the earliest kill wins), so they claim nothing.
        let mut flaky_links = vec![false; nodes * (ports + 1)];
        let mut lossy_links = vec![false; nodes * (ports + 1)];
        for (index, spec) in self.faults.iter().enumerate() {
            let node = match spec.target {
                FaultTarget::Link { node, .. } | FaultTarget::Router { node } => node,
            };
            if node >= nodes {
                return Err(ConfigError::FaultNodeOutOfRange { index, node, nodes });
            }
            if let FaultTarget::Link { port, .. } = spec.target {
                if port >= ports {
                    return Err(ConfigError::FaultPortOutOfRange { index, port, ports });
                }
                if port != local && self.mesh.neighbor(node, port).is_none() {
                    return Err(ConfigError::FaultLinkMissing { index, node, port });
                }
            }
            let occupancy = match spec.kind {
                FaultKind::Dead { .. } => None,
                FaultKind::Flaky {
                    period,
                    down,
                    phase,
                } => {
                    if down == 0 || down >= period || phase >= period {
                        return Err(ConfigError::FaultFlakyDuty {
                            index,
                            period,
                            down,
                            phase,
                        });
                    }
                    Some(&mut flaky_links)
                }
                FaultKind::Lossy { prob } => {
                    if !prob.is_finite() || !(0.0..=1.0).contains(&prob) {
                        return Err(ConfigError::FaultLossProbInvalid { index });
                    }
                    Some(&mut lossy_links)
                }
            };
            let Some(occupied) = occupancy else { continue };
            let mut claim = |key: usize| {
                if occupied[key] {
                    return Err(ConfigError::FaultDuplicate { index });
                }
                occupied[key] = true;
                Ok(())
            };
            match spec.target {
                FaultTarget::Link { node, port } => claim(node * (ports + 1) + port)?,
                FaultTarget::Router { node } => {
                    for port in 0..ports {
                        if port == local {
                            claim(node * (ports + 1) + port)?;
                        } else if let Some(n) = self.mesh.neighbor(node, port) {
                            claim(node * (ports + 1) + port)?;
                            claim(n * (ports + 1) + (port ^ 1))?;
                        }
                    }
                    claim(node * (ports + 1) + ports)?; // injection channel
                }
            }
        }
        Ok(())
    }

    /// The router-core configuration for this network.
    #[must_use]
    pub fn router_config(&self) -> RouterConfig {
        let mut cfg = self.router.router_config(self.mesh.ports());
        if self.single_cycle {
            cfg.timing = Timing::single_cycle();
        }
        cfg
    }

    /// Packet injection rate per node, in packets/cycle.
    #[must_use]
    pub fn packets_per_node_cycle(&self) -> f64 {
        self.injection_fraction * self.mesh.capacity_flits_per_node() / f64::from(self.packet_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_protocol() {
        let cfg = NetworkConfig::paper_scale(RouterKind::Wormhole { buffers: 8 });
        assert_eq!(cfg.mesh.nodes(), 64);
        assert_eq!(cfg.warmup_cycles, 10_000);
        assert_eq!(cfg.sample_packets, 100_000);
        assert_eq!(cfg.packet_len, 5);
        assert_eq!(cfg.link_delay, 1);
    }

    #[test]
    fn injection_rate_is_capacity_scaled() {
        let cfg = NetworkConfig::mesh(8, RouterKind::Wormhole { buffers: 8 }).with_injection(0.4);
        // 0.4 × 0.5 flits / 5 flits-per-packet = 0.04 packets/node/cycle.
        assert!((cfg.packets_per_node_cycle() - 0.04).abs() < 1e-12);
    }

    #[test]
    fn router_config_respects_single_cycle() {
        let cfg = NetworkConfig::mesh(
            4,
            RouterKind::VirtualChannel {
                vcs: 2,
                buffers_per_vc: 4,
            },
        )
        .with_single_cycle(true);
        assert_eq!(cfg.router_config().timing, Timing::single_cycle());
    }

    #[test]
    fn labels_match_figure_legends() {
        assert_eq!(RouterKind::Wormhole { buffers: 8 }.label(), "WH (8 bufs)");
        assert_eq!(
            RouterKind::SpeculativeVc {
                vcs: 2,
                buffers_per_vc: 4
            }
            .label(),
            "specVC (2vcsX4bufs)"
        );
    }

    #[test]
    fn kind_accessors() {
        let k = RouterKind::VirtualChannel {
            vcs: 4,
            buffers_per_vc: 4,
        };
        assert_eq!(k.vcs(), 4);
        assert_eq!(k.buffers_per_vc(), 4);
        assert_eq!(RouterKind::Wormhole { buffers: 16 }.vcs(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_injection_rejected() {
        let _ = NetworkConfig::mesh(4, RouterKind::Wormhole { buffers: 8 }).with_injection(0.0);
    }

    #[test]
    fn for_mesh_keeps_the_topology() {
        let cfg = NetworkConfig::for_mesh(Mesh::new(4, 3), RouterKind::Wormhole { buffers: 8 });
        assert_eq!(cfg.mesh.nodes(), 64);
        assert_eq!(cfg.mesh.ports(), 7);
        assert_eq!(cfg.router_config().ports, 7, "arena sizing follows ports");
        assert_eq!(
            NetworkConfig::mesh(4, RouterKind::Wormhole { buffers: 8 }).mesh,
            Mesh::new(4, 2),
            "the k x k constructor still builds 2-D"
        );
    }

    #[test]
    fn validate_accepts_the_supported_grid() {
        let vc = RouterKind::VirtualChannel {
            vcs: 2,
            buffers_per_vc: 4,
        };
        for dims in 1..=3 {
            for radix in [2, 4, 8, 16, 32] {
                let mesh = NetworkConfig::for_mesh(Mesh::new(radix, dims), vc);
                assert_eq!(mesh.validate(), Ok(()), "{radix}-ary {dims}-mesh");
                assert_eq!(
                    mesh.clone().into_torus().validate(),
                    Ok(()),
                    "{radix}-ary {dims}-torus"
                );
                assert_eq!(
                    mesh.with_routing(RoutingAlgo::NegativeFirstAdaptive)
                        .validate(),
                    Ok(()),
                    "negative-first on {radix}-ary {dims}-mesh"
                );
            }
        }
    }

    #[test]
    fn validate_rejects_torus_without_dateline_vcs() {
        for router in [
            RouterKind::Wormhole { buffers: 8 },
            RouterKind::VirtualCutThrough { buffers: 8 },
            RouterKind::VirtualChannel {
                vcs: 1,
                buffers_per_vc: 8,
            },
        ] {
            let err = NetworkConfig::mesh(4, router)
                .into_torus()
                .validate()
                .unwrap_err();
            assert_eq!(
                err,
                ConfigError::TorusNeedsDatelineVcs { vcs: 1 },
                "{router}"
            );
            let msg = err.to_string();
            assert!(msg.contains(">= 2 VCs"), "unactionable: {msg}");
            assert!(msg.contains("SpeculativeVc"), "no fix named: {msg}");
        }
    }

    #[test]
    fn validate_rejects_west_first_outside_two_d_meshes() {
        let vc = RouterKind::VirtualChannel {
            vcs: 2,
            buffers_per_vc: 4,
        };
        for (mesh, dims, torus) in [
            (Mesh::new(4, 3), 3, false),
            (Mesh::new(8, 1), 1, false),
            (Mesh::new(4, 2).into_torus(), 2, true),
        ] {
            let err = NetworkConfig::for_mesh(mesh, vc)
                .with_routing(RoutingAlgo::WestFirstAdaptive)
                .validate()
                .unwrap_err();
            assert_eq!(err, ConfigError::WestFirstNeedsTwoDimMesh { dims, torus });
            let msg = err.to_string();
            assert!(msg.contains("NegativeFirstAdaptive"), "no fix named: {msg}");
        }
    }

    #[test]
    fn validate_rejects_negative_first_on_torus() {
        let vc = RouterKind::VirtualChannel {
            vcs: 2,
            buffers_per_vc: 4,
        };
        let err = NetworkConfig::for_mesh(Mesh::new(4, 3).into_torus(), vc)
            .with_routing(RoutingAlgo::NegativeFirstAdaptive)
            .validate()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::AdaptiveOnTorus {
                algo: RoutingAlgo::NegativeFirstAdaptive
            }
        );
        assert!(err.to_string().contains("DimensionOrdered"), "{err}");
    }

    #[test]
    fn validate_bounds_the_rebalance_knob() {
        let base = NetworkConfig::mesh(4, RouterKind::Wormhole { buffers: 8 });
        assert_eq!(base.validate(), Ok(()), "knob off is always valid");
        assert_eq!(
            base.clone().with_rebalance(0, 1.5).validate(),
            Err(ConfigError::RebalanceEpochZero)
        );
        for bad in [0.99, 0.0, -3.0, f64::NAN] {
            assert_eq!(
                base.clone().with_rebalance(64, bad).validate(),
                Err(ConfigError::RebalanceThresholdBelowOne),
                "threshold {bad}"
            );
        }
        for ok in [1.0, 1.5, f64::INFINITY] {
            assert_eq!(
                base.clone().with_rebalance(1, ok).validate(),
                Ok(()),
                "threshold {ok}"
            );
        }
        let msg = ConfigError::RebalanceThresholdBelowOne.to_string();
        assert!(msg.contains("work_max/work_mean"), "message names the fix");
        assert!(ConfigError::RebalanceEpochZero
            .to_string()
            .contains("epoch"));
    }

    #[test]
    fn validate_rejects_shapes_beyond_the_table_encoding() {
        let vc = RouterKind::VirtualChannel {
            vcs: 2,
            buffers_per_vc: 4,
        };
        let err = NetworkConfig::for_mesh(Mesh::new(257, 1), vc)
            .validate()
            .unwrap_err();
        assert_eq!(err, ConfigError::RadixTooLarge { radix: 257 });
        assert!(err.to_string().contains("dimension"), "{err}");
        let err = NetworkConfig::for_mesh(Mesh::new(2, 9), vc)
            .with_routing(RoutingAlgo::NegativeFirstAdaptive)
            .validate()
            .unwrap_err();
        assert_eq!(err, ConfigError::TooManyAdaptiveDims { dims: 9 });
        assert_eq!(
            NetworkConfig::for_mesh(Mesh::new(2, 9), vc).validate(),
            Ok(()),
            "dimension-ordered has no dimension cap"
        );
    }

    #[test]
    fn builder_order_no_longer_matters_for_torus_and_routing() {
        // Previously into_torus()/with_routing() asserted eagerly, so a
        // valid end state could panic mid-build; now only the end state
        // is judged.
        let vc = RouterKind::VirtualChannel {
            vcs: 2,
            buffers_per_vc: 4,
        };
        let cfg = NetworkConfig::mesh(4, vc)
            .with_routing(RoutingAlgo::WestFirstAdaptive)
            .with_routing(RoutingAlgo::DimensionOrdered)
            .into_torus();
        assert_eq!(cfg.validate(), Ok(()));
    }

    #[test]
    fn fault_spec_grammar_round_trips() {
        for (s, spec) in [
            (
                "link:28:2:dead@500",
                FaultSpec {
                    target: FaultTarget::Link { node: 28, port: 2 },
                    kind: FaultKind::Dead { at: 500 },
                },
            ),
            (
                "link:3:1:flaky@64/16/8",
                FaultSpec {
                    target: FaultTarget::Link { node: 3, port: 1 },
                    kind: FaultKind::Flaky {
                        period: 64,
                        down: 16,
                        phase: 8,
                    },
                },
            ),
            (
                "link:0:0:loss@0.25",
                FaultSpec {
                    target: FaultTarget::Link { node: 0, port: 0 },
                    kind: FaultKind::Lossy { prob: 0.25 },
                },
            ),
            (
                "router:27:dead@500",
                FaultSpec {
                    target: FaultTarget::Router { node: 27 },
                    kind: FaultKind::Dead { at: 500 },
                },
            ),
        ] {
            assert_eq!(FaultSpec::parse(s), Ok(spec), "{s}");
            assert_eq!(
                FaultSpec::parse(&spec.to_string()),
                Ok(spec),
                "display round-trip of {s}"
            );
        }
        // Phase defaults to 0.
        assert_eq!(
            FaultSpec::parse("link:1:0:flaky@8/2"),
            Ok(FaultSpec {
                target: FaultTarget::Link { node: 1, port: 0 },
                kind: FaultKind::Flaky {
                    period: 8,
                    down: 2,
                    phase: 0
                },
            })
        );
    }

    #[test]
    fn fault_spec_parse_errors_name_the_grammar() {
        for bad in [
            "switch:1:dead@5",
            "link:1:dead@5",
            "link:a:0:dead@5",
            "link:1:0:dead",
            "link:1:0:dead@x",
            "link:1:0:flaky@64",
            "link:1:0:flaky@64/8/1/2",
            "link:1:0:gone@5",
            "router:1:dead@5:extra",
            "",
        ] {
            let err = FaultSpec::parse(bad).unwrap_err();
            assert!(err.contains("fault"), "{bad}: {err}");
        }
        let list = parse_faults("router:27:dead@500, link:28:2:flaky@64/16;").unwrap();
        assert_eq!(list.len(), 2);
        assert!(parse_faults("router:27:dead@500,bogus").is_err());
        assert_eq!(parse_faults(""), Ok(vec![]));
    }

    #[test]
    fn validate_bounds_the_fault_plan() {
        let base = NetworkConfig::mesh(4, RouterKind::Wormhole { buffers: 8 });
        let fault = |s: &str| FaultSpec::parse(s).unwrap();
        assert_eq!(
            base.clone()
                .with_faults(vec![fault("router:5:dead@100")])
                .validate(),
            Ok(())
        );
        assert_eq!(
            base.clone()
                .with_faults(vec![fault("router:16:dead@100")])
                .validate(),
            Err(ConfigError::FaultNodeOutOfRange {
                index: 0,
                node: 16,
                nodes: 16
            })
        );
        assert_eq!(
            base.clone()
                .with_faults(vec![fault("link:5:7:dead@100")])
                .validate(),
            Err(ConfigError::FaultPortOutOfRange {
                index: 0,
                port: 7,
                ports: 5
            })
        );
        // Node 0 sits at the mesh corner: port 1 (x-negative) is unwired.
        assert_eq!(
            base.clone()
                .with_faults(vec![fault("link:0:1:dead@100")])
                .validate(),
            Err(ConfigError::FaultLinkMissing {
                index: 0,
                node: 0,
                port: 1
            })
        );
        // ...but on a torus the wrap link exists. (Torus needs VCs.)
        let torus = NetworkConfig::mesh(
            4,
            RouterKind::VirtualChannel {
                vcs: 2,
                buffers_per_vc: 4,
            },
        )
        .into_torus();
        assert_eq!(
            torus
                .with_faults(vec![fault("link:0:1:dead@100")])
                .validate(),
            Ok(())
        );
        for bad in ["flaky@8/0", "flaky@8/8", "flaky@8/2/8", "flaky@0/0"] {
            let err = base
                .clone()
                .with_faults(vec![fault(&format!("link:5:0:{bad}"))])
                .validate()
                .unwrap_err();
            assert!(
                matches!(err, ConfigError::FaultFlakyDuty { index: 0, .. }),
                "{bad}: {err}"
            );
            assert!(err.to_string().contains("1 <= down < period"), "{err}");
        }
        for bad in ["loss@1.5", "loss@-0.1", "loss@NaN", "loss@inf"] {
            assert_eq!(
                base.clone()
                    .with_faults(vec![fault(&format!("link:5:0:{bad}"))])
                    .validate(),
                Err(ConfigError::FaultLossProbInvalid { index: 0 }),
                "{bad}"
            );
        }
    }

    #[test]
    fn validate_rejects_ambiguous_fault_merges() {
        let base = NetworkConfig::mesh(4, RouterKind::Wormhole { buffers: 8 });
        let fault = |s: &str| FaultSpec::parse(s).unwrap();
        // Two flaky faults on the same directed link: ambiguous.
        assert_eq!(
            base.clone()
                .with_faults(vec![
                    fault("link:5:0:flaky@8/2"),
                    fault("link:5:0:flaky@16/4"),
                ])
                .validate(),
            Err(ConfigError::FaultDuplicate { index: 1 })
        );
        // A router-wide flaky fault claims the incident links too.
        assert_eq!(
            base.clone()
                .with_faults(vec![
                    fault("router:5:flaky@8/2"),
                    fault("link:5:0:flaky@16/4"),
                ])
                .validate(),
            Err(ConfigError::FaultDuplicate { index: 1 })
        );
        // ...including the *incoming* direction from the neighbor.
        assert_eq!(
            base.clone()
                .with_faults(vec![
                    fault("router:5:flaky@8/2"),
                    fault("link:6:1:flaky@16/4"),
                ])
                .validate(),
            Err(ConfigError::FaultDuplicate { index: 1 })
        );
        // Dead faults overlap freely (earliest kill wins), and a dead
        // plus a flaky on one link is a valid combination.
        assert_eq!(
            base.clone()
                .with_faults(vec![
                    fault("router:5:dead@200"),
                    fault("link:5:0:dead@100"),
                    fault("link:5:0:flaky@8/2"),
                    fault("link:5:0:loss@0.1"),
                ])
                .validate(),
            Ok(())
        );
        // Different directed links never collide.
        assert_eq!(
            base.with_faults(vec![
                fault("link:5:0:flaky@8/2"),
                fault("link:5:1:flaky@8/2"),
            ])
            .validate(),
            Ok(())
        );
    }

    #[test]
    fn barrier_kind_defaults_to_spin_and_builds() {
        let cfg = NetworkConfig::mesh(4, RouterKind::Wormhole { buffers: 8 });
        assert_eq!(cfg.barrier, BarrierKind::Spin);
        let cfg = cfg.with_barrier(BarrierKind::Tree);
        assert_eq!(cfg.barrier, BarrierKind::Tree);
        assert_eq!(BarrierKind::Spin.to_string(), "spin");
        assert_eq!(BarrierKind::Tree.to_string(), "tree");
    }

    #[test]
    fn engine_kinds_report_their_thread_footprint() {
        assert_eq!(EngineKind::CycleDriven.threads_per_run(), 1);
        assert_eq!(EngineKind::EventDriven.threads_per_run(), 1);
        assert_eq!(EngineKind::parallel(4).threads_per_run(), 4);
        assert_eq!(
            EngineKind::ParallelShards { shards: 0 }.threads_per_run(),
            1,
            "a degenerate shard count still occupies one thread"
        );
        assert_eq!(EngineKind::parallel(3).to_string(), "parallel-shards(3)");
    }
}
