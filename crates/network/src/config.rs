//! Network simulation configuration.

use crate::topology::Mesh;
use crate::traffic::TrafficPattern;
use router_core::{RouterConfig, Timing};
use runqueue::CancelToken;
use std::fmt;

/// Which router microarchitecture populates the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterKind {
    /// Wormhole with `buffers` flits of input buffering per port.
    Wormhole {
        /// Flit buffers per input port.
        buffers: usize,
    },
    /// Virtual cut-through (related-work baseline): packets advance only
    /// into buffers with room for the whole packet.
    VirtualCutThrough {
        /// Flit buffers per input port (should be ≥ the packet length).
        buffers: usize,
    },
    /// Non-speculative virtual-channel router.
    VirtualChannel {
        /// Virtual channels per port.
        vcs: usize,
        /// Flit buffers per VC.
        buffers_per_vc: usize,
    },
    /// Speculative virtual-channel router.
    SpeculativeVc {
        /// Virtual channels per port.
        vcs: usize,
        /// Flit buffers per VC.
        buffers_per_vc: usize,
    },
}

impl RouterKind {
    /// The router-core configuration for a router with `ports` ports.
    #[must_use]
    pub fn router_config(&self, ports: usize) -> RouterConfig {
        match *self {
            RouterKind::Wormhole { buffers } => RouterConfig::wormhole(ports, buffers),
            RouterKind::VirtualCutThrough { buffers } => {
                RouterConfig::virtual_cut_through(ports, buffers)
            }
            RouterKind::VirtualChannel {
                vcs,
                buffers_per_vc,
            } => RouterConfig::virtual_channel(ports, vcs, buffers_per_vc),
            RouterKind::SpeculativeVc {
                vcs,
                buffers_per_vc,
            } => RouterConfig::speculative(ports, vcs, buffers_per_vc),
        }
    }

    /// Flit buffers per input VC.
    #[must_use]
    pub fn buffers_per_vc(&self) -> usize {
        match *self {
            RouterKind::Wormhole { buffers } | RouterKind::VirtualCutThrough { buffers } => buffers,
            RouterKind::VirtualChannel { buffers_per_vc, .. }
            | RouterKind::SpeculativeVc { buffers_per_vc, .. } => buffers_per_vc,
        }
    }

    /// Virtual channels per port.
    #[must_use]
    pub fn vcs(&self) -> usize {
        match *self {
            RouterKind::Wormhole { .. } | RouterKind::VirtualCutThrough { .. } => 1,
            RouterKind::VirtualChannel { vcs, .. } | RouterKind::SpeculativeVc { vcs, .. } => vcs,
        }
    }

    /// Figure-legend label, e.g. `VC (2vcsX4bufs)`.
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            RouterKind::Wormhole { buffers } => format!("WH ({buffers} bufs)"),
            RouterKind::VirtualCutThrough { buffers } => format!("VCT ({buffers} bufs)"),
            RouterKind::VirtualChannel {
                vcs,
                buffers_per_vc,
            } => format!("VC ({vcs}vcsX{buffers_per_vc}bufs)"),
            RouterKind::SpeculativeVc {
                vcs,
                buffers_per_vc,
            } => format!("specVC ({vcs}vcsX{buffers_per_vc}bufs)"),
        }
    }
}

impl fmt::Display for RouterKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Which simulation engine advances the network.
///
/// All engines produce **bit-identical** results — the event-driven
/// engine only skips work that is provably a no-op (quiescent routers,
/// channels with nothing due), and the sharded-parallel engine only
/// reorders operations that provably commute, replaying every
/// order-sensitive accumulation serially in node order. The equivalence
/// is enforced by the differential harness in
/// `tests/engine_equivalence.rs`, which runs the engines across router
/// kinds, topologies, traffic patterns, loads, and shard counts and
/// asserts identical measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Tick every router every cycle (the reference engine; simple,
    /// obviously correct, O(nodes) per cycle regardless of load).
    CycleDriven,
    /// Tick only routers with work pending, waking them on flit delivery
    /// (the default: at the low loads that dominate a latency–throughput
    /// sweep, most routers are idle in most cycles).
    #[default]
    EventDriven,
    /// Partition the mesh into contiguous shards and run lockstep rounds
    /// of **one** gate-barrier episode each: while the workers are
    /// parked at the gate, the coordinator commits measurement state in
    /// fixed node order and decides whether globally quiescent cycles
    /// can be fast-forwarded (every shard votes its earliest future
    /// work); the released round then runs delivery, sources, and router
    /// ticks as one fused parallel phase, exchanging boundary
    /// flits/credits through preallocated per-shard-pair mailboxes
    /// stamped at emission time. Results are bit-identical to the serial
    /// engines for any shard count, thread schedule, and
    /// [`BarrierKind`] (see [`crate::shard`]).
    ParallelShards {
        /// Worker shards (≥ 1; clamped to the node count). Each shard
        /// runs on its own thread during [`crate::sim::Network::run`].
        shards: usize,
    },
}

impl EngineKind {
    /// The sharded-parallel engine with `shards` worker shards.
    #[must_use]
    pub fn parallel(shards: usize) -> Self {
        EngineKind::ParallelShards { shards }
    }

    /// How many threads one simulation run occupies under this engine
    /// (1 for the serial engines).
    #[must_use]
    pub fn threads_per_run(&self) -> usize {
        match *self {
            EngineKind::CycleDriven | EngineKind::EventDriven => 1,
            EngineKind::ParallelShards { shards } => shards.max(1),
        }
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineKind::CycleDriven => write!(f, "cycle-driven"),
            EngineKind::EventDriven => write!(f, "event-driven"),
            EngineKind::ParallelShards { shards } => write!(f, "parallel-shards({shards})"),
        }
    }
}

/// Which barrier implementation synchronizes the sharded-parallel
/// engine's per-cycle gate. Purely a performance knob: results are
/// bit-identical for either kind (enforced by
/// `tests/engine_equivalence.rs`), so it is excluded from
/// [`crate::orchestrate`]'s config hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BarrierKind {
    /// A single shared arrival counter with sense reversal. O(parties)
    /// contention on one cache line per episode; fastest at small shard
    /// counts.
    #[default]
    Spin,
    /// A sense-reversing combining tree: each party spins on its own
    /// flag and arrivals propagate up a binary tree, so no cache line is
    /// contended by more than a constant number of parties. Wins when
    /// shard counts grow past the point where the shared counter
    /// serializes.
    Tree,
}

impl fmt::Display for BarrierKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BarrierKind::Spin => write!(f, "spin"),
            BarrierKind::Tree => write!(f, "tree"),
        }
    }
}

/// Which routing algorithm the network uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingAlgo {
    /// Dimension-ordered routing (the paper's choice; deadlock-free on a
    /// mesh, and on a torus when combined with dateline VC classes).
    #[default]
    DimensionOrdered,
    /// West-first turn-model minimal adaptive routing (extension;
    /// 2-D mesh only).
    WestFirstAdaptive,
    /// Negative-first turn-model minimal adaptive routing (extension;
    /// the Glass–Ni turn model, deadlock-free on a k-ary n-mesh of any
    /// dimension count — the n-D generalization of minimal adaptivity).
    NegativeFirstAdaptive,
}

impl fmt::Display for RoutingAlgo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutingAlgo::DimensionOrdered => write!(f, "dimension-ordered"),
            RoutingAlgo::WestFirstAdaptive => write!(f, "west-first adaptive"),
            RoutingAlgo::NegativeFirstAdaptive => write!(f, "negative-first adaptive"),
        }
    }
}

/// Why a [`NetworkConfig`] cannot be simulated, with enough context to
/// fix it. Produced by [`NetworkConfig::validate`] and returned by
/// [`crate::sim::Network::try_new`]; every variant names the offending
/// value and the change that makes the configuration valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// A torus with fewer than two VCs per port: the dateline
    /// deadlock-avoidance scheme needs two VC classes per ring.
    TorusNeedsDatelineVcs {
        /// The configured VC count.
        vcs: usize,
    },
    /// West-first adaptive routing outside its 2-D-mesh domain.
    WestFirstNeedsTwoDimMesh {
        /// The configured dimension count.
        dims: usize,
        /// Whether wraparound links were requested.
        torus: bool,
    },
    /// A turn-model adaptive algorithm on a torus, whose wraparound
    /// links reintroduce the channel-dependency cycles turn models
    /// eliminate.
    AdaptiveOnTorus {
        /// The requested algorithm.
        algo: RoutingAlgo,
    },
    /// More dimensions than the adaptive candidate encoding supports.
    TooManyAdaptiveDims {
        /// The configured dimension count.
        dims: usize,
    },
    /// A radix beyond the route table's one-byte coordinate encoding.
    RadixTooLarge {
        /// The configured radix.
        radix: usize,
    },
    /// A zero-cycle rebalance epoch: the work meter needs at least one
    /// executed cycle per decision window.
    RebalanceEpochZero,
    /// A rebalance threshold below 1.0 (or NaN): the trigger is a
    /// `work_max / work_mean` ratio, whose floor is 1.0 at perfect
    /// balance, so any lower threshold would fire on every epoch.
    RebalanceThresholdBelowOne,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ConfigError::TorusNeedsDatelineVcs { vcs } => write!(
                f,
                "a torus needs >= 2 VCs per port for the dateline deadlock-avoidance \
                 classes, got {vcs}; use a VirtualChannel or SpeculativeVc router with \
                 vcs >= 2, or drop the wraparound links (mesh)"
            ),
            ConfigError::WestFirstNeedsTwoDimMesh { dims, torus } => write!(
                f,
                "west-first adaptive routing is defined for 2-D meshes, got a {dims}-D \
                 {}; use RoutingAlgo::NegativeFirstAdaptive for n-D meshes or \
                 RoutingAlgo::DimensionOrdered for any topology",
                if torus { "torus" } else { "mesh" }
            ),
            ConfigError::AdaptiveOnTorus { algo } => write!(
                f,
                "{algo} routing is defined for meshes only (wraparound links break the \
                 turn model's deadlock freedom); use RoutingAlgo::DimensionOrdered, \
                 whose dateline VC classes handle the torus"
            ),
            ConfigError::TooManyAdaptiveDims { dims } => write!(
                f,
                "adaptive routing supports at most {} dimensions, got {dims}; use \
                 RoutingAlgo::DimensionOrdered for higher-dimensional meshes",
                crate::routing::MAX_CANDIDATES
            ),
            ConfigError::RadixTooLarge { radix } => write!(
                f,
                "radix {radix} exceeds the route table's one-byte coordinate encoding \
                 (max 256 nodes per dimension); add a dimension instead"
            ),
            ConfigError::RebalanceEpochZero => write!(
                f,
                "rebalance epoch is 0; the work meter needs at least one executed \
                 cycle per decision window — use with_rebalance(epoch >= 1, ..) or \
                 drop the rebalance knob"
            ),
            ConfigError::RebalanceThresholdBelowOne => write!(
                f,
                "rebalance threshold must be a work_max/work_mean ratio >= 1.0 \
                 (1.0 = repartition on any imbalance; f64::INFINITY = meter but \
                 never repartition); got a value below 1.0 or NaN"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Work-metered dynamic shard rebalancing for
/// [`EngineKind::ParallelShards`] (see `shard.rs` for the mechanism).
/// Every `epoch` *executed* cycles the engine folds per-node work
/// counters into EWMAs; when the per-shard `work_max / work_mean` ratio
/// exceeds `threshold`, the partition is re-cut along weighted row seams
/// and in-flight state migrates to the new owners. All inputs are pure
/// functions of simulation state, so results stay bit-identical to the
/// serial engines — the knob trades wall-clock, never correctness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalanceConfig {
    /// Decision window in executed cycles (≥ 1). Executed cycles — not
    /// simulated cycles — so quiescence fast-forwards do not starve the
    /// meter, and the count is identical for every shard layout.
    pub epoch: u64,
    /// Imbalance trigger: repartition when `work_max / work_mean`
    /// exceeds this ratio (≥ 1.0). `f64::INFINITY` meters the imbalance
    /// without ever repartitioning — the "before" measurement.
    pub threshold: f64,
}

/// Full configuration of a network experiment.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Topology.
    pub mesh: Mesh,
    /// Routing algorithm.
    pub routing: RoutingAlgo,
    /// Simulation engine (cycle-driven reference or the event-driven
    /// active-set engine; results are identical).
    pub engine: EngineKind,
    /// Barrier implementation for the sharded-parallel engine's
    /// per-cycle gate (ignored by the serial engines; results are
    /// identical for either kind).
    pub barrier: BarrierKind,
    /// Router microarchitecture.
    pub router: RouterKind,
    /// Use single-cycle ("unit latency") routers instead of the pipelined
    /// model (the §5.2 baseline).
    pub single_cycle: bool,
    /// Flit propagation delay across a channel, in cycles (paper: 1).
    pub link_delay: u64,
    /// Credit propagation delay, in cycles (paper: 1; Figure 18 uses 4).
    pub credit_prop_delay: u64,
    /// Credit pipeline (processing) delay at the receiving router, in
    /// cycles (paper: 1).
    pub credit_proc_delay: u64,
    /// Flits per packet (paper: 5).
    pub packet_len: u32,
    /// Offered load as a fraction of network capacity, `> 0`.
    pub injection_fraction: f64,
    /// Traffic pattern.
    pub pattern: TrafficPattern,
    /// Warm-up cycles before measurement (paper: 10,000).
    pub warmup_cycles: u64,
    /// Number of tagged packets in the measurement sample
    /// (paper: 100,000).
    pub sample_packets: u64,
    /// Hard cycle limit; hitting it marks the run saturated.
    pub max_cycles: u64,
    /// RNG seed.
    pub seed: u64,
    /// Collect per-phase wall-clock attribution
    /// ([`crate::stats::PhaseNanos`]) while running. Off by default: the
    /// clock reads cost a few percent and change no simulation result.
    pub phase_timing: bool,
    /// Cooperative cancellation token, if the run belongs to a batch.
    /// [`crate::sim::Network::run`] polls it once per
    /// [`crate::sim::CANCEL_BATCH`] cycles and winds down early when it
    /// is poisoned (marking the result
    /// [`crate::sim::RunResult::cancelled`]); `None` costs nothing.
    pub cancel: Option<CancelToken>,
    /// Work-metered dynamic shard rebalancing for the sharded-parallel
    /// engine (ignored by the serial engines; results are identical
    /// either way). `None` (the default) keeps the static row-seam
    /// partition.
    pub rebalance: Option<RebalanceConfig>,
}

impl NetworkConfig {
    /// A k×k mesh with the paper's defaults (scaled-down sample sizes; use
    /// [`NetworkConfig::paper_scale`] for the full protocol).
    #[must_use]
    pub fn mesh(k: usize, router: RouterKind) -> Self {
        Self::for_mesh(Mesh::new(k, 2), router)
    }

    /// The same defaults on an arbitrary topology — any k-ary n-mesh or
    /// torus [`Mesh`] describes (e.g. `Mesh::new(4, 3)` for a 4-ary
    /// 3-cube with 7-port routers).
    #[must_use]
    pub fn for_mesh(mesh: Mesh, router: RouterKind) -> Self {
        NetworkConfig {
            mesh,
            routing: RoutingAlgo::DimensionOrdered,
            engine: EngineKind::default(),
            barrier: BarrierKind::default(),
            router,
            single_cycle: false,
            link_delay: 1,
            credit_prop_delay: 1,
            credit_proc_delay: 1,
            packet_len: 5,
            injection_fraction: 0.1,
            pattern: TrafficPattern::Uniform,
            warmup_cycles: 1_000,
            sample_packets: 2_000,
            max_cycles: 200_000,
            seed: 0x5EED,
            phase_timing: false,
            cancel: None,
            rebalance: None,
        }
    }

    /// The paper's full measurement protocol: 8×8 mesh, 10,000 warm-up
    /// cycles, 100,000 tagged packets.
    #[must_use]
    pub fn paper_scale(router: RouterKind) -> Self {
        let mut cfg = Self::mesh(8, router);
        cfg.warmup_cycles = 10_000;
        cfg.sample_packets = 100_000;
        cfg.max_cycles = 2_000_000;
        cfg
    }

    /// Sets the offered load (fraction of capacity).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction`.
    #[must_use]
    pub fn with_injection(mut self, fraction: f64) -> Self {
        assert!(fraction > 0.0, "injection fraction must be positive");
        self.injection_fraction = fraction;
        self
    }

    /// Sets the warm-up length in cycles.
    #[must_use]
    pub fn with_warmup(mut self, cycles: u64) -> Self {
        self.warmup_cycles = cycles;
        self
    }

    /// Sets the tagged-sample size in packets.
    #[must_use]
    pub fn with_sample(mut self, packets: u64) -> Self {
        self.sample_packets = packets;
        self
    }

    /// Sets the hard cycle limit.
    #[must_use]
    pub fn with_max_cycles(mut self, cycles: u64) -> Self {
        self.max_cycles = cycles;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the simulation engine. Results do not depend on the choice
    /// (see [`EngineKind`]); wall-clock time does.
    #[must_use]
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Selects the barrier implementation for the sharded-parallel
    /// engine's per-cycle gate. Results do not depend on the choice (see
    /// [`BarrierKind`]); synchronization cost does.
    #[must_use]
    pub fn with_barrier(mut self, barrier: BarrierKind) -> Self {
        self.barrier = barrier;
        self
    }

    /// Enables per-phase wall-clock attribution (see
    /// [`crate::stats::PhaseNanos`]). Results are unaffected; the run
    /// gains clock reads and [`crate::sim::RunResult::phases`].
    #[must_use]
    pub fn with_phase_timing(mut self, on: bool) -> Self {
        self.phase_timing = on;
        self
    }

    /// Attaches a cooperative cancellation token. The run polls it at
    /// cycle-batch granularity ([`crate::sim::CANCEL_BATCH`] cycles) and
    /// stops early once it is poisoned; a cancelled run's result is
    /// flagged [`crate::sim::RunResult::cancelled`] and must not be
    /// recorded as a measurement.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Enables work-metered dynamic shard rebalancing for the
    /// sharded-parallel engine: every `epoch` executed cycles, if the
    /// per-shard `work_max / work_mean` ratio exceeds `threshold`, the
    /// partition is re-cut along weighted row seams. Results do not
    /// depend on the knob (see [`RebalanceConfig`]); wall-clock under
    /// non-uniform traffic does. Bounds (`epoch >= 1`,
    /// `threshold >= 1.0`) are checked by [`NetworkConfig::validate`]
    /// when the network is built, so builder order never matters.
    #[must_use]
    pub fn with_rebalance(mut self, epoch: u64, threshold: f64) -> Self {
        self.rebalance = Some(RebalanceConfig { epoch, threshold });
        self
    }

    /// Sets the credit propagation delay (Figure 18 sensitivity study).
    #[must_use]
    pub fn with_credit_prop_delay(mut self, cycles: u64) -> Self {
        self.credit_prop_delay = cycles;
        self
    }

    /// Switches to single-cycle ("unit latency") routers.
    #[must_use]
    pub fn with_single_cycle(mut self, on: bool) -> Self {
        self.single_cycle = on;
        self
    }

    /// Sets the traffic pattern.
    #[must_use]
    pub fn with_pattern(mut self, pattern: TrafficPattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// Converts the topology to a torus (wraparound links). Needs a VC
    /// or speculative-VC router with at least two VCs per port —
    /// dimension-ordered routing on a torus is made deadlock-free by the
    /// dateline VC classes (see `routing::dateline_vc_mask`). The
    /// requirement is checked by [`NetworkConfig::validate`] when the
    /// network is built, so builder order never matters.
    #[must_use]
    pub fn into_torus(mut self) -> Self {
        self.mesh = self.mesh.into_torus();
        self
    }

    /// Sets the routing algorithm. Domain restrictions (west-first needs
    /// a 2-D mesh; the turn models reject tori) are checked by
    /// [`NetworkConfig::validate`] when the network is built, so builder
    /// order never matters.
    #[must_use]
    pub fn with_routing(mut self, routing: RoutingAlgo) -> Self {
        self.routing = routing;
        self
    }

    /// Checks that the configuration describes a simulable network,
    /// reporting the first violation as a [`ConfigError`] whose message
    /// names the fix. [`crate::sim::Network::try_new`] calls this before
    /// building anything; call it directly to validate user input early.
    ///
    /// # Errors
    ///
    /// See [`ConfigError`] for the rejected combinations: a torus
    /// without dateline VCs, west-first outside a 2-D mesh, a turn model
    /// on a torus, and shapes beyond the route table's compact encoding.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.mesh.radix() > 256 {
            return Err(ConfigError::RadixTooLarge {
                radix: self.mesh.radix(),
            });
        }
        if self.mesh.is_torus() && self.router.vcs() < 2 {
            return Err(ConfigError::TorusNeedsDatelineVcs {
                vcs: self.router.vcs(),
            });
        }
        match self.routing {
            RoutingAlgo::DimensionOrdered => {}
            RoutingAlgo::WestFirstAdaptive => {
                if self.mesh.dims() != 2 || self.mesh.is_torus() {
                    return Err(ConfigError::WestFirstNeedsTwoDimMesh {
                        dims: self.mesh.dims(),
                        torus: self.mesh.is_torus(),
                    });
                }
            }
            RoutingAlgo::NegativeFirstAdaptive => {
                if self.mesh.is_torus() {
                    return Err(ConfigError::AdaptiveOnTorus { algo: self.routing });
                }
                if self.mesh.dims() > crate::routing::MAX_CANDIDATES {
                    return Err(ConfigError::TooManyAdaptiveDims {
                        dims: self.mesh.dims(),
                    });
                }
            }
        }
        if let Some(rb) = self.rebalance {
            if rb.epoch == 0 {
                return Err(ConfigError::RebalanceEpochZero);
            }
            // NaN must be rejected explicitly: a plain `< 1.0` check
            // would let it through and poison every later comparison.
            if rb.threshold.is_nan() || rb.threshold < 1.0 {
                return Err(ConfigError::RebalanceThresholdBelowOne);
            }
        }
        Ok(())
    }

    /// The router-core configuration for this network.
    #[must_use]
    pub fn router_config(&self) -> RouterConfig {
        let mut cfg = self.router.router_config(self.mesh.ports());
        if self.single_cycle {
            cfg.timing = Timing::single_cycle();
        }
        cfg
    }

    /// Packet injection rate per node, in packets/cycle.
    #[must_use]
    pub fn packets_per_node_cycle(&self) -> f64 {
        self.injection_fraction * self.mesh.capacity_flits_per_node() / f64::from(self.packet_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_protocol() {
        let cfg = NetworkConfig::paper_scale(RouterKind::Wormhole { buffers: 8 });
        assert_eq!(cfg.mesh.nodes(), 64);
        assert_eq!(cfg.warmup_cycles, 10_000);
        assert_eq!(cfg.sample_packets, 100_000);
        assert_eq!(cfg.packet_len, 5);
        assert_eq!(cfg.link_delay, 1);
    }

    #[test]
    fn injection_rate_is_capacity_scaled() {
        let cfg = NetworkConfig::mesh(8, RouterKind::Wormhole { buffers: 8 }).with_injection(0.4);
        // 0.4 × 0.5 flits / 5 flits-per-packet = 0.04 packets/node/cycle.
        assert!((cfg.packets_per_node_cycle() - 0.04).abs() < 1e-12);
    }

    #[test]
    fn router_config_respects_single_cycle() {
        let cfg = NetworkConfig::mesh(
            4,
            RouterKind::VirtualChannel {
                vcs: 2,
                buffers_per_vc: 4,
            },
        )
        .with_single_cycle(true);
        assert_eq!(cfg.router_config().timing, Timing::single_cycle());
    }

    #[test]
    fn labels_match_figure_legends() {
        assert_eq!(RouterKind::Wormhole { buffers: 8 }.label(), "WH (8 bufs)");
        assert_eq!(
            RouterKind::SpeculativeVc {
                vcs: 2,
                buffers_per_vc: 4
            }
            .label(),
            "specVC (2vcsX4bufs)"
        );
    }

    #[test]
    fn kind_accessors() {
        let k = RouterKind::VirtualChannel {
            vcs: 4,
            buffers_per_vc: 4,
        };
        assert_eq!(k.vcs(), 4);
        assert_eq!(k.buffers_per_vc(), 4);
        assert_eq!(RouterKind::Wormhole { buffers: 16 }.vcs(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_injection_rejected() {
        let _ = NetworkConfig::mesh(4, RouterKind::Wormhole { buffers: 8 }).with_injection(0.0);
    }

    #[test]
    fn for_mesh_keeps_the_topology() {
        let cfg = NetworkConfig::for_mesh(Mesh::new(4, 3), RouterKind::Wormhole { buffers: 8 });
        assert_eq!(cfg.mesh.nodes(), 64);
        assert_eq!(cfg.mesh.ports(), 7);
        assert_eq!(cfg.router_config().ports, 7, "arena sizing follows ports");
        assert_eq!(
            NetworkConfig::mesh(4, RouterKind::Wormhole { buffers: 8 }).mesh,
            Mesh::new(4, 2),
            "the k x k constructor still builds 2-D"
        );
    }

    #[test]
    fn validate_accepts_the_supported_grid() {
        let vc = RouterKind::VirtualChannel {
            vcs: 2,
            buffers_per_vc: 4,
        };
        for dims in 1..=3 {
            for radix in [2, 4, 8, 16, 32] {
                let mesh = NetworkConfig::for_mesh(Mesh::new(radix, dims), vc);
                assert_eq!(mesh.validate(), Ok(()), "{radix}-ary {dims}-mesh");
                assert_eq!(
                    mesh.clone().into_torus().validate(),
                    Ok(()),
                    "{radix}-ary {dims}-torus"
                );
                assert_eq!(
                    mesh.with_routing(RoutingAlgo::NegativeFirstAdaptive)
                        .validate(),
                    Ok(()),
                    "negative-first on {radix}-ary {dims}-mesh"
                );
            }
        }
    }

    #[test]
    fn validate_rejects_torus_without_dateline_vcs() {
        for router in [
            RouterKind::Wormhole { buffers: 8 },
            RouterKind::VirtualCutThrough { buffers: 8 },
            RouterKind::VirtualChannel {
                vcs: 1,
                buffers_per_vc: 8,
            },
        ] {
            let err = NetworkConfig::mesh(4, router)
                .into_torus()
                .validate()
                .unwrap_err();
            assert_eq!(
                err,
                ConfigError::TorusNeedsDatelineVcs { vcs: 1 },
                "{router}"
            );
            let msg = err.to_string();
            assert!(msg.contains(">= 2 VCs"), "unactionable: {msg}");
            assert!(msg.contains("SpeculativeVc"), "no fix named: {msg}");
        }
    }

    #[test]
    fn validate_rejects_west_first_outside_two_d_meshes() {
        let vc = RouterKind::VirtualChannel {
            vcs: 2,
            buffers_per_vc: 4,
        };
        for (mesh, dims, torus) in [
            (Mesh::new(4, 3), 3, false),
            (Mesh::new(8, 1), 1, false),
            (Mesh::new(4, 2).into_torus(), 2, true),
        ] {
            let err = NetworkConfig::for_mesh(mesh, vc)
                .with_routing(RoutingAlgo::WestFirstAdaptive)
                .validate()
                .unwrap_err();
            assert_eq!(err, ConfigError::WestFirstNeedsTwoDimMesh { dims, torus });
            let msg = err.to_string();
            assert!(msg.contains("NegativeFirstAdaptive"), "no fix named: {msg}");
        }
    }

    #[test]
    fn validate_rejects_negative_first_on_torus() {
        let vc = RouterKind::VirtualChannel {
            vcs: 2,
            buffers_per_vc: 4,
        };
        let err = NetworkConfig::for_mesh(Mesh::new(4, 3).into_torus(), vc)
            .with_routing(RoutingAlgo::NegativeFirstAdaptive)
            .validate()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::AdaptiveOnTorus {
                algo: RoutingAlgo::NegativeFirstAdaptive
            }
        );
        assert!(err.to_string().contains("DimensionOrdered"), "{err}");
    }

    #[test]
    fn validate_bounds_the_rebalance_knob() {
        let base = NetworkConfig::mesh(4, RouterKind::Wormhole { buffers: 8 });
        assert_eq!(base.validate(), Ok(()), "knob off is always valid");
        assert_eq!(
            base.clone().with_rebalance(0, 1.5).validate(),
            Err(ConfigError::RebalanceEpochZero)
        );
        for bad in [0.99, 0.0, -3.0, f64::NAN] {
            assert_eq!(
                base.clone().with_rebalance(64, bad).validate(),
                Err(ConfigError::RebalanceThresholdBelowOne),
                "threshold {bad}"
            );
        }
        for ok in [1.0, 1.5, f64::INFINITY] {
            assert_eq!(
                base.clone().with_rebalance(1, ok).validate(),
                Ok(()),
                "threshold {ok}"
            );
        }
        let msg = ConfigError::RebalanceThresholdBelowOne.to_string();
        assert!(msg.contains("work_max/work_mean"), "message names the fix");
        assert!(ConfigError::RebalanceEpochZero
            .to_string()
            .contains("epoch"));
    }

    #[test]
    fn validate_rejects_shapes_beyond_the_table_encoding() {
        let vc = RouterKind::VirtualChannel {
            vcs: 2,
            buffers_per_vc: 4,
        };
        let err = NetworkConfig::for_mesh(Mesh::new(257, 1), vc)
            .validate()
            .unwrap_err();
        assert_eq!(err, ConfigError::RadixTooLarge { radix: 257 });
        assert!(err.to_string().contains("dimension"), "{err}");
        let err = NetworkConfig::for_mesh(Mesh::new(2, 9), vc)
            .with_routing(RoutingAlgo::NegativeFirstAdaptive)
            .validate()
            .unwrap_err();
        assert_eq!(err, ConfigError::TooManyAdaptiveDims { dims: 9 });
        assert_eq!(
            NetworkConfig::for_mesh(Mesh::new(2, 9), vc).validate(),
            Ok(()),
            "dimension-ordered has no dimension cap"
        );
    }

    #[test]
    fn builder_order_no_longer_matters_for_torus_and_routing() {
        // Previously into_torus()/with_routing() asserted eagerly, so a
        // valid end state could panic mid-build; now only the end state
        // is judged.
        let vc = RouterKind::VirtualChannel {
            vcs: 2,
            buffers_per_vc: 4,
        };
        let cfg = NetworkConfig::mesh(4, vc)
            .with_routing(RoutingAlgo::WestFirstAdaptive)
            .with_routing(RoutingAlgo::DimensionOrdered)
            .into_torus();
        assert_eq!(cfg.validate(), Ok(()));
    }

    #[test]
    fn barrier_kind_defaults_to_spin_and_builds() {
        let cfg = NetworkConfig::mesh(4, RouterKind::Wormhole { buffers: 8 });
        assert_eq!(cfg.barrier, BarrierKind::Spin);
        let cfg = cfg.with_barrier(BarrierKind::Tree);
        assert_eq!(cfg.barrier, BarrierKind::Tree);
        assert_eq!(BarrierKind::Spin.to_string(), "spin");
        assert_eq!(BarrierKind::Tree.to_string(), "tree");
    }

    #[test]
    fn engine_kinds_report_their_thread_footprint() {
        assert_eq!(EngineKind::CycleDriven.threads_per_run(), 1);
        assert_eq!(EngineKind::EventDriven.threads_per_run(), 1);
        assert_eq!(EngineKind::parallel(4).threads_per_run(), 4);
        assert_eq!(
            EngineKind::ParallelShards { shards: 0 }.threads_per_run(),
            1,
            "a degenerate shard count still occupies one thread"
        );
        assert_eq!(EngineKind::parallel(3).to_string(), "parallel-shards(3)");
    }
}
