//! Deterministic sharded-parallel execution of the network simulator.
//!
//! The [`crate::config::EngineKind::ParallelShards`] engine partitions the
//! mesh's routers into contiguous per-thread shards
//! ([`crate::topology::Mesh::shard_ranges`]) and executes the simulation
//! in lockstep rounds whose results are **bit-identical** to the serial
//! engines for any shard count and any thread schedule. Each round is one
//! *gate* barrier episode followed by one fused compute phase:
//!
//! 1. **Gate** — workers arrive and block; the coordinator waits for
//!    them, then runs the serial section alone: it commits the previous
//!    cycle's measurement records **in fixed node order** (sample
//!    tagging, then the floating-point latency / histogram /
//!    channel-load accumulators — the only order-sensitive state, which
//!    never leaves this section), evaluates the stop condition, and
//!    decides whether the next cycles can be **fast-forwarded**: every
//!    shard votes (via a `fetch_min` register) the earliest future cycle
//!    at which it has any work — pending wheel deliveries, staged
//!    boundary mail, active routers, or a source about to cross its
//!    injection threshold — and when the minimum lies beyond the next
//!    cycle, the skipped cycles are provably no-ops for *every* shard
//!    and are elided exactly the way the serial event engine elides
//!    quiescent-router ticks. The gate is either a central
//!    sense-reversing spin barrier or a sense-reversing combining tree
//!    ([`crate::config::BarrierKind`]); both spin briefly then yield.
//! 2. **Fused compute** (parallel, no internal barrier) — each shard:
//!    applies the boundary flits and credits other shards published
//!    *last* round (flits are pushed into the shard's own delay pipes
//!    with their original emission cycle; credits carry an absolute due
//!    cycle and sit on a private `remote_credits` wheel until it
//!    arrives), drains its own wheel's due deliveries, steps its sources
//!    in node order, and ticks its active routers in node order.
//!    Departures and credits bound for another shard are staged in
//!    per-shard-pair mailboxes **at emission time** — tagged with enough
//!    timing (`FlitMsg::at`, `CreditMsg::due`) that the receiver can
//!    apply them a full round later without any mid-cycle exchange
//!    barrier. Tail ejections, channel-load events, and created packet
//!    ids are recorded per shard in node order for the next gate's
//!    serial commit.
//!
//! Why this is bit-identical: within one cycle the serial engine's
//! delivery operations commute (disjoint queues and counters — the same
//! argument the event engine rests on), credit application commutes
//! (pure counter increments) and lands in the same cycle it would have
//! under the serial engine (the staged `due` cycle *is* the serial
//! delivery cycle), sources interact with nothing but their own state
//! and their own injection pipe, and routers only interact through
//! pipes with ≥ 1 cycle of latency. Fast-forwarded cycles are cycles in
//! which no shard would deliver, inject, or tick anything — sources
//! advance their fractional accumulators by pure repeated addition
//! ([`Source::fast_forward`]), exactly the operations the skipped steps
//! would have performed, so even the floating-point state is identical.
//! The only order-sensitive state — the global tagging counter and the
//! floating-point latency accumulators — never leaves the serial commit.
//!
//! Everything here is allocation-free in steady state: mailboxes,
//! wheels, scratch buffers, and the per-cycle record vectors are
//! retained and reach a fixed capacity after warm-up (enforced by
//! `crates/network/tests/alloc_free_parallel.rs`).
//!
//! # Work-metered dynamic rebalancing
//!
//! Contiguous even cuts balance *nodes*, not *work*: under a hotspot
//! pattern the shard holding the hot column does most of the ticking
//! while its siblings spin at the gate. When
//! [`crate::config::NetworkConfig::with_rebalance`] is set, every node
//! accrues a work meter (weighted router ticks, pipe deliveries, and
//! departures — all pure functions of simulation state, so the meter is
//! identical for every partition and thread schedule), folded into a
//! per-node EWMA at the end of every `epoch` *executed* cycles. Each
//! shard folds its own slice and publishes its shard total through
//! [`Lockstep::shard_work`]; at the next gate the leader reads the
//! totals and, when `work_max / work_mean` exceeds the configured
//! threshold, recuts the partition along the EWMA curve
//! ([`crate::topology::Mesh::weighted_shard_ranges_into`] — still
//! contiguous and row-seam-snapped) and **migrates**: every wheel is
//! drained with its due cycles intact, staged boundary mail and parked
//! remote credits are re-homed onto the new owners' wheels, and credit
//! pipes whose upstream consumer moved across a new seam are converted
//! to mailbox-style credits (same due cycle) on the consumer's wheel.
//! No new barrier is added — the decision rides the existing gate, and
//! the migration happens between worker-pool *eras* while no worker
//! holds a shard view. Because the meter, the epoch boundaries (counted
//! in executed cycles, which every shard executes in lockstep), and the
//! cut computation are all deterministic, the partition *sequence* is
//! deterministic — and since no partition choice ever affects results
//! (the serial commit owns all order-sensitive state), rebalanced runs
//! stay bit-identical to the serial engines.

use crate::config::{BarrierKind, RebalanceConfig};
use crate::fault::{clip, ClipSlot, DropReason, DropStats, FaultModel};
use crate::routing::RouteTable;
use crate::sim::{Delivery, NodeOracle};
use crate::source::{Source, SourceStep};
use crate::stats::PhaseNanos;
use crate::topology::Mesh;
use crate::traffic::TrafficPattern;
use router_core::{DelayPipe, EventWheel, Flit, PacketId, Router, TickOutput};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Cap on how far ahead one quiescence vote scans a source's injection
/// accumulator ([`Source::quiet_horizon`]). Bounds the per-vote cost on
/// near-zero-rate sources; a longer quiet stretch is simply covered by
/// several consecutive fast-forwards, each re-voted after one executed
/// cycle.
pub(crate) const SRC_SCAN_CAP: u64 = 4096;

/// Work-meter weight of one router tick relative to one pipe delivery
/// or departure. A tick runs route computation, VC and switch
/// allocation, and the crossbar pass — several times the cost of
/// popping one flit off a pipe — so the meter weights it accordingly.
/// Only the *ratios* between per-node meters matter to the cuts.
const W_TICK: u64 = 4;

/// Stride-doubling cap for no-op rebalance decisions: once a steady
/// imbalance keeps triggering decisions whose cuts do not change, the
/// decision interval backs off exponentially to this many epochs so the
/// engine is not respawning its worker pool for nothing.
const MAX_DECISION_STRIDE: u64 = 1 << 10;

/// The message every stalled waiter dies with when a sibling shard
/// panics — one clear failure instead of a cascade of unrelated
/// mutex-poisoning panics.
const SIBLING_PANIC: &str = "a sibling shard panicked; abandoning the cycle lockstep";

/// Locks a mailbox (or shard-out record), converting mutex poisoning —
/// a sibling shard panicked while holding the lock — into the same
/// single clear failure the barrier's poison path produces, instead of
/// a generic `PoisonError` unwrap that buries the original panic.
pub(crate) fn lock_mailbox<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|_| panic!("{SIBLING_PANIC}"))
}

/// Spins briefly, then yields (the yield fallback keeps oversubscribed
/// configurations — more shards than cores — live instead of burning a
/// core per waiter).
#[inline]
fn spin_or_yield(spins: &mut u32) {
    *spins += 1;
    if *spins < 128 {
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

/// A reusable leader-gate built on a central sense-reversing counter.
///
/// The protocol is asymmetric: workers [`SpinBarrier::arrive`] and
/// block; the leader [`SpinBarrier::wait_followers`], runs its serial
/// section while everyone is parked, then [`SpinBarrier::release`]s.
/// One episode per simulated cycle replaces the previous engine's three
/// symmetric barrier waits.
///
/// `std::sync::Barrier` parks threads on a futex; at the microsecond
/// cycle times of this simulator the wake-up latency would dominate the
/// compute phase, so arrivals spin briefly before yielding.
///
/// The gate is *poisonable*: a shard that panics mid-phase poisons it
/// from a drop guard, and every waiter converts the poison into its own
/// panic instead of deadlocking the lockstep.
#[derive(Debug)]
pub(crate) struct SpinBarrier {
    parties: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
    poisoned: AtomicBool,
}

impl SpinBarrier {
    pub(crate) fn new(parties: usize) -> Self {
        assert!(parties >= 1, "a gate needs at least one party");
        SpinBarrier {
            parties,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
        }
    }

    fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
    }

    fn check_poison(&self) {
        assert!(!self.poisoned.load(Ordering::Acquire), "{SIBLING_PANIC}");
    }

    /// Worker side: signals arrival and blocks until the leader releases
    /// this episode.
    fn arrive(&self) {
        self.check_poison();
        let generation = self.generation.load(Ordering::Acquire);
        self.arrived.fetch_add(1, Ordering::AcqRel);
        let mut spins = 0u32;
        while self.generation.load(Ordering::Acquire) == generation {
            self.check_poison();
            spin_or_yield(&mut spins);
        }
    }

    /// Leader side: blocks until every worker has arrived (and parked).
    fn wait_followers(&self) {
        let mut spins = 0u32;
        while self.arrived.load(Ordering::Acquire) != self.parties - 1 {
            self.check_poison();
            spin_or_yield(&mut spins);
        }
    }

    /// Leader side: opens the gate. Everything the leader wrote in its
    /// serial section happens-before the workers' post-arrive reads.
    fn release(&self) {
        self.arrived.store(0, Ordering::Release);
        self.generation.fetch_add(1, Ordering::AcqRel);
    }
}

/// A leader-gate built on a sense-reversing combining tree: arrivals
/// propagate up a binary tree of per-party flags (parent of `i` is
/// `(i − 1) / 2`; the leader, party 0, is the root), so no cache line is
/// written by more than a constant number of parties per episode —
/// unlike the central counter, whose single line every party contends
/// on. Release is a single sense flag every parked worker reads.
#[derive(Debug)]
pub(crate) struct TreeBarrier {
    parties: usize,
    /// `ready[i]` is set by party `i ≥ 1` once its whole subtree has
    /// arrived this episode; sense-encoded, so it never needs resetting.
    ready: Vec<AtomicBool>,
    /// Per-party local sense; `sense[i]` is written only by party `i`.
    sense: Vec<AtomicBool>,
    /// Global release flag, flipped to the episode's sense by the leader.
    release: AtomicBool,
    poisoned: AtomicBool,
}

impl TreeBarrier {
    pub(crate) fn new(parties: usize) -> Self {
        assert!(parties >= 1, "a gate needs at least one party");
        TreeBarrier {
            parties,
            ready: (0..parties).map(|_| AtomicBool::new(false)).collect(),
            sense: (0..parties).map(|_| AtomicBool::new(false)).collect(),
            release: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
        }
    }

    fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
    }

    fn check_poison(&self) {
        assert!(!self.poisoned.load(Ordering::Acquire), "{SIBLING_PANIC}");
    }

    /// Waits until both children of `party` (if any) have posted this
    /// episode's sense.
    fn gather_children(&self, party: usize, episode_sense: bool) {
        for child in [2 * party + 1, 2 * party + 2] {
            if child >= self.parties {
                break;
            }
            let mut spins = 0u32;
            while self.ready[child].load(Ordering::Acquire) != episode_sense {
                self.check_poison();
                spin_or_yield(&mut spins);
            }
        }
    }

    /// Worker side (`party ≥ 1`): combines its subtree's arrival up the
    /// tree, then blocks on the release flag.
    fn arrive(&self, party: usize) {
        self.check_poison();
        let s = !self.sense[party].load(Ordering::Relaxed);
        self.gather_children(party, s);
        self.ready[party].store(s, Ordering::Release);
        let mut spins = 0u32;
        while self.release.load(Ordering::Acquire) != s {
            self.check_poison();
            spin_or_yield(&mut spins);
        }
        self.sense[party].store(s, Ordering::Relaxed);
    }

    /// Leader side: blocks until the root's children report their
    /// subtrees complete — i.e. every worker has arrived.
    fn wait_followers(&self) {
        let s = !self.sense[0].load(Ordering::Relaxed);
        self.gather_children(0, s);
    }

    /// Leader side: opens the gate by flipping the release sense.
    fn release(&self) {
        let s = !self.sense[0].load(Ordering::Relaxed);
        self.sense[0].store(s, Ordering::Relaxed);
        self.release.store(s, Ordering::Release);
    }
}

/// The per-cycle gate, behind one interface so
/// [`crate::config::BarrierKind`] can swap implementations without the
/// engine caring.
#[derive(Debug)]
pub(crate) enum Gate {
    Spin(SpinBarrier),
    Tree(TreeBarrier),
}

impl Gate {
    pub(crate) fn new(kind: BarrierKind, parties: usize) -> Self {
        match kind {
            BarrierKind::Spin => Gate::Spin(SpinBarrier::new(parties)),
            BarrierKind::Tree => Gate::Tree(TreeBarrier::new(parties)),
        }
    }

    /// Marks the gate dead; every current and future waiter panics.
    pub(crate) fn poison(&self) {
        match self {
            Gate::Spin(b) => b.poison(),
            Gate::Tree(b) => b.poison(),
        }
    }

    /// Worker side: arrive and block until released.
    pub(crate) fn arrive(&self, party: usize) {
        match self {
            Gate::Spin(b) => b.arrive(),
            Gate::Tree(b) => b.arrive(party),
        }
    }

    /// Leader side: block until all workers are parked at the gate.
    pub(crate) fn wait_followers(&self) {
        match self {
            Gate::Spin(b) => b.wait_followers(),
            Gate::Tree(b) => b.wait_followers(),
        }
    }

    /// Leader side: open the gate.
    pub(crate) fn release(&self) {
        match self {
            Gate::Spin(b) => b.release(),
            Gate::Tree(b) => b.release(),
        }
    }
}

/// Poisons the gate if the holder unwinds, so sibling shards panic out
/// of their waits instead of spinning forever.
pub(crate) struct PoisonGuard<'a>(pub &'a Gate);

impl Drop for PoisonGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

/// The coordination state shared by the leader and every worker: the
/// gate plus the broadcast (stop / fast-forward target) and gather
/// (quiescence vote) registers around it.
#[derive(Debug)]
pub(crate) struct Lockstep {
    pub(crate) gate: Gate,
    /// Leader → workers: wind down and return.
    pub(crate) stop: AtomicBool,
    /// Leader → workers: the cycle to resume execution at. Equal to the
    /// worker's own cycle counter when no fast-forward was granted;
    /// greater when the skipped cycles should be fast-forwarded instead
    /// of executed.
    pub(crate) skip_to: AtomicU64,
    /// Workers → leader: `fetch_min` of every shard's earliest future
    /// cycle with work. Read and reset by the leader at the gate.
    pub(crate) next_work: AtomicU64,
    /// Workers → leader: each shard's work-EWMA total, published at the
    /// end of every rebalance epoch (the worker folds its own slice of
    /// the per-node meters — the leader cannot read worker-borrowed
    /// state — and the gate's happens-before makes the totals visible
    /// in the next serial section). Unused when rebalancing is off.
    pub(crate) shard_work: Vec<AtomicU64>,
}

impl Lockstep {
    pub(crate) fn new(kind: BarrierKind, parties: usize, start: u64) -> Self {
        Lockstep {
            gate: Gate::new(kind, parties),
            stop: AtomicBool::new(false),
            skip_to: AtomicU64::new(start),
            next_work: AtomicU64::new(u64::MAX),
            shard_work: (0..parties).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Leader side: takes the round's combined vote and resets the
    /// register for the next one.
    pub(crate) fn take_vote(&self) -> u64 {
        self.next_work.swap(u64::MAX, Ordering::AcqRel)
    }
}

/// A flit crossing a shard boundary: deliver `flit` into input
/// `(node, port)` of the receiving shard, emitted during cycle `at`
/// (the receiver pushes it into its own delay pipe with that original
/// timestamp, so it arrives at `at + 1 + link_delay` exactly as a
/// same-shard departure would).
#[derive(Debug, Clone, Copy)]
pub(crate) struct FlitMsg {
    pub node: u32,
    pub port: u8,
    pub flit: Flit,
    pub at: u64,
}

/// A credit crossing a shard boundary: return one credit for output
/// `(node, port)`, VC `vc`, of the receiving shard at cycle `due` — the
/// same cycle the serial engine's credit pipe would have delivered it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CreditMsg {
    pub node: u32,
    pub port: u8,
    pub vc: u32,
    pub due: u64,
}

/// Preallocated per-shard-pair mailboxes. Slot `(from, to)` is written
/// by shard `from` at the end of its fused compute phase and drained by
/// shard `to` at the start of its next one; the gate between rounds
/// keeps every lock uncontended, and the retained `Vec`s make the
/// exchange allocation-free once capacities plateau.
#[derive(Debug)]
pub(crate) struct Mailboxes {
    shards: usize,
    flits: Vec<Mutex<Vec<FlitMsg>>>,
    credits: Vec<Mutex<Vec<CreditMsg>>>,
}

impl Mailboxes {
    pub(crate) fn new(shards: usize) -> Self {
        Mailboxes {
            shards,
            flits: (0..shards * shards)
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
            credits: (0..shards * shards)
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
        }
    }

    pub(crate) fn shards(&self) -> usize {
        self.shards
    }

    /// Boundary flits currently staged (emitted but not yet applied by
    /// their receiving shard). They live here across a cycle boundary,
    /// so flit conservation must count them as in flight.
    pub(crate) fn staged_flits(&self) -> u64 {
        self.flits
            .iter()
            .map(|m| lock_mailbox(m).len() as u64)
            .sum()
    }

    /// Drains every staged message into the migration scratch (the
    /// timing tags — `FlitMsg::at`, `CreditMsg::due` — carry everything
    /// needed to re-home them onto the new owners' wheels). Called only
    /// between eras, when no shard holds a mailbox lock.
    pub(crate) fn drain_all(&self, flits: &mut Vec<FlitMsg>, credits: &mut Vec<(u64, CreditMsg)>) {
        for slot in &self.flits {
            flits.extend(lock_mailbox(slot).drain(..));
        }
        for slot in &self.credits {
            credits.extend(lock_mailbox(slot).drain(..).map(|m| (m.due, m)));
        }
    }

    fn flit_slot(&self, from: usize, to: usize) -> &Mutex<Vec<FlitMsg>> {
        &self.flits[from * self.shards + to]
    }

    fn credit_slot(&self, from: usize, to: usize) -> &Mutex<Vec<CreditMsg>> {
        &self.credits[from * self.shards + to]
    }
}

/// What one shard reports to the serial commit each cycle. Every vector
/// is filled in node order during the parallel phases and drained by the
/// coordinating thread, so concatenating the shards in index order
/// replays the serial engine's exact event sequence.
#[derive(Debug, Default)]
pub(crate) struct ShardOut {
    /// Packets created this cycle, in node order.
    pub created: Vec<PacketId>,
    /// Tail-flit ejections this cycle, in node order: `(packet,
    /// creation cycle, destination node)`.
    pub tails: Vec<(PacketId, u64, u32)>,
    /// Channel-load events this cycle: `(node, out_port)`.
    pub loads: Vec<(u32, u8)>,
    /// Flits ejected this cycle.
    pub ejected: u64,
    /// Packets whose head the fault layer dropped this cycle, in node
    /// order — resolved against the tagged sample at the serial commit.
    pub drops: Vec<PacketId>,
    /// Flits handed to the injection stage this cycle (pre-clip, so the
    /// telemetry counter matches the sources' own accounting).
    pub injected: u64,
    /// Router ticks executed this cycle (telemetry gauge delta).
    pub ticks: u64,
    /// Cross-shard flits staged into mailboxes this cycle.
    pub mail_flits: u64,
    /// Cross-shard credits staged into mailboxes this cycle.
    pub mail_credits: u64,
    /// Per-reason drop deltas this cycle, absorbed by the telemetry
    /// registry at the serial commit (in fixed shard order).
    pub drop_stats: DropStats,
    /// Wall-clock nanoseconds this cycle spent in the fused phases
    /// `[delivery, sources, router]` — stamped only when tracing is on.
    pub span_nanos: [u64; 3],
}

/// Per-shard state that persists across cycles (the shard's half of the
/// event-driven machinery plus its outbound mailbox staging).
#[derive(Debug)]
pub(crate) struct ShardAux {
    /// Scheduled pipe deliveries for this shard's nodes.
    pub wheel: EventWheel<Delivery>,
    /// Cross-shard credits received by mail, parked until their due
    /// cycle (the wheel indexes them by `CreditMsg::due`).
    pub remote_credits: EventWheel<CreditMsg>,
    /// Reused router tick output buffer.
    pub tick_buf: TickOutput,
    /// Reused source step buffer.
    pub step_buf: SourceStep,
    /// Router ticks executed by this shard (work accounting).
    pub router_ticks: u64,
    /// Cycles this shard has *executed* (fast-forwarded cycles are not
    /// counted — no work can happen in them). Every shard executes the
    /// same cycles in lockstep, so this counter is identical across
    /// shards and partition-independent; rebalance epoch boundaries are
    /// measured against it.
    pub(crate) executed: u64,
    /// Cached earliest cycle at which one of this shard's sources can
    /// cross its injection threshold; valid until reached (a quiet
    /// source's crossing schedule is pure accumulator arithmetic, so it
    /// cannot move earlier). Recomputed lazily by [`ShardCtx::vote`].
    src_next: u64,
    /// Whether this cycle's tick left any router active.
    busy: bool,
    /// Whether this cycle staged any outbound boundary mail.
    sent_mail: bool,
    /// Outbound flit staging, one buffer per destination shard.
    out_flits: Vec<Vec<FlitMsg>>,
    /// Outbound credit staging, one buffer per destination shard.
    out_credits: Vec<Vec<CreditMsg>>,
}

impl ShardAux {
    pub(crate) fn new(shards: usize, horizon: u64) -> Self {
        ShardAux {
            wheel: EventWheel::new(horizon),
            remote_credits: EventWheel::new(horizon),
            tick_buf: TickOutput::default(),
            step_buf: SourceStep::default(),
            router_ticks: 0,
            executed: 0,
            src_next: 0,
            busy: false,
            sent_mail: false,
            out_flits: (0..shards).map(|_| Vec::new()).collect(),
            out_credits: (0..shards).map(|_| Vec::new()).collect(),
        }
    }
}

/// The full sharded-engine state owned by a `Network` (present only when
/// the engine is `ParallelShards`).
#[derive(Debug)]
pub(crate) struct ShardSet {
    /// Contiguous `[lo, hi)` node range per shard.
    pub ranges: Vec<(usize, usize)>,
    /// Owning shard of every node (`O(1)` boundary lookups).
    pub node_shard: Vec<u32>,
    /// Persistent per-shard engine state.
    pub aux: Vec<ShardAux>,
    /// The per-shard-pair exchange.
    pub mail: Mailboxes,
    /// Per-shard commit records.
    pub outs: Vec<Mutex<ShardOut>>,
    /// Per-node work accrued this epoch (node-indexed, so it survives
    /// migration untouched; each shard writes only its own slice).
    pub work_epoch: Vec<u64>,
    /// Per-node work EWMA across epochs — the weight vector the cuts
    /// are computed from.
    pub work_ewma: Vec<u64>,
    /// Decision state and preallocated migration scratch.
    pub rebal: RebalanceState,
}

/// Rebalance decision state plus the preallocated scratch a migration
/// drains into — sized up front (when the knob is on) so even the first
/// migration allocates nothing.
#[derive(Debug)]
pub(crate) struct RebalanceState {
    /// Earliest executed-cycle count at which the next migration
    /// decision may fire (imbalance is *metered* every epoch either
    /// way). Starts at 0: the first epoch may decide.
    next_decision: u64,
    /// Current decision backoff, in epochs (see [`MAX_DECISION_STRIDE`]).
    stride: u64,
    /// The leader's snapshot of [`Lockstep::shard_work`], one slot per
    /// shard.
    pub(crate) epoch_totals: Vec<u64>,
    /// Wheel deliveries drained with their due cycles.
    deliveries: Vec<(u64, Delivery)>,
    /// Parked and staged cross-shard credits, keyed by due cycle.
    credits: Vec<(u64, CreditMsg)>,
    /// Staged boundary flits.
    flits: Vec<FlitMsg>,
    /// One credit pipe's contents, mid-conversion: `(due, vc)`.
    pipe_credits: Vec<(u64, usize)>,
    /// Row prefix-sum scratch for the weighted cut.
    pub(crate) prefix: Vec<u128>,
    /// The candidate partition the cut computes into.
    pub(crate) new_ranges: Vec<(usize, usize)>,
}

impl RebalanceState {
    fn new(enabled: bool, shards: usize, mesh: &Mesh, horizon: u64) -> Self {
        // Worst-case pending volume: every pipe can hold one item per
        // cycle of the wheel horizon, each with one scheduled delivery.
        let slots = if enabled {
            mesh.nodes() * mesh.ports() * (horizon as usize + 1)
        } else {
            0
        };
        let rows = mesh.nodes() / mesh.radix();
        RebalanceState {
            next_decision: 0,
            stride: 1,
            epoch_totals: vec![0; if enabled { shards } else { 0 }],
            deliveries: Vec::with_capacity(slots),
            credits: Vec::with_capacity(slots),
            // One staged flit per mailbox slot is the hard ceiling (one
            // emission per (node, port) per cycle).
            flits: Vec::with_capacity(if enabled {
                mesh.nodes() * mesh.ports()
            } else {
                0
            }),
            pipe_credits: Vec::with_capacity(if enabled { horizon as usize + 1 } else { 0 }),
            prefix: Vec::with_capacity(if enabled { rows + 1 } else { 0 }),
            new_ranges: Vec::with_capacity(if enabled { shards } else { 0 }),
        }
    }

    /// Meters one epoch's imbalance from the published shard totals and
    /// reports whether a migration decision should fire: the decision
    /// backoff has elapsed and `work_max / work_mean` exceeds
    /// `threshold` (compared multiplied out — no division, so the
    /// trigger is exact and deterministic). An all-idle epoch meters as
    /// perfectly balanced and never triggers.
    pub(crate) fn record_epoch(
        &mut self,
        phases: &mut PhaseNanos,
        executed: u64,
        threshold: f64,
    ) -> bool {
        let s = self.epoch_totals.len() as u64;
        let total: u64 = self.epoch_totals.iter().sum();
        let max = self.epoch_totals.iter().copied().max().unwrap_or(0);
        let milli = if total == 0 {
            1000
        } else {
            (u128::from(max) * 1000 * u128::from(s) / u128::from(total)) as u64
        };
        phases.imbalance_milli_sum += milli;
        phases.imbalance_epochs += 1;
        total > 0
            && executed >= self.next_decision
            && (max as f64) * (s as f64) > threshold * (total as f64)
    }

    /// Applies the decision backoff: a migration resets the stride (the
    /// new cuts may need refinement soon); a no-op decision — the
    /// weighted cut reproduced the current partition — doubles it, so a
    /// steady already-balanced imbalance stops respawning the pool.
    pub(crate) fn after_decision(&mut self, migrated: bool, executed: u64, epoch: u64) {
        if migrated {
            self.stride = 1;
        } else {
            self.stride = (self.stride * 2).min(MAX_DECISION_STRIDE);
        }
        self.next_decision = executed + epoch.saturating_mul(self.stride);
    }
}

impl ShardSet {
    pub(crate) fn new(
        mesh: &Mesh,
        shards: usize,
        horizon: u64,
        rebalance: Option<RebalanceConfig>,
    ) -> Self {
        let ranges = mesh.shard_ranges(shards);
        let s = ranges.len();
        let mut node_shard = vec![0u32; mesh.nodes()];
        for (i, &(lo, hi)) in ranges.iter().enumerate() {
            for slot in &mut node_shard[lo..hi] {
                *slot = i as u32;
            }
        }
        ShardSet {
            ranges,
            node_shard,
            aux: (0..s).map(|_| ShardAux::new(s, horizon)).collect(),
            mail: Mailboxes::new(s),
            outs: (0..s).map(|_| Mutex::new(ShardOut::default())).collect(),
            work_epoch: vec![0; mesh.nodes()],
            work_ewma: vec![0; mesh.nodes()],
            rebal: RebalanceState::new(rebalance.is_some(), s, mesh, horizon),
        }
    }

    /// Router ticks executed across all shards.
    pub(crate) fn router_ticks(&self) -> u64 {
        self.aux.iter().map(|a| a.router_ticks).sum()
    }

    /// Repartitions the flat per-node state along `rebal.new_ranges`,
    /// re-homing every in-flight artifact onto its new owner. Runs
    /// between eras — no worker holds a shard view — right after an
    /// executed cycle `N`, which pins the timing invariants: every
    /// wheel's cursor is at `N`, every pending delivery/credit is due in
    /// `(N, N + horizon]`, and staged mailbox flits carry `at == N` — so
    /// every re-schedule below satisfies the wheels' horizon asserts.
    ///
    /// The one subtle case is a **credit pipe crossing a new seam**:
    /// `credit_back[node][port]`'s consumer is the *upstream* router,
    /// so if the new cut separates `node` from its upstream the pending
    /// pipe contents are converted — due cycles intact — into
    /// mailbox-style [`CreditMsg`]s on the consumer's `remote_credits`
    /// wheel (exactly where an emission-time cross-shard credit would
    /// have gone), and the pipe's deliveries are dropped with the
    /// emptied pipe. Local-port credits never convert: their consumer
    /// is the node's own source. Returns how many nodes changed owner.
    pub(crate) fn migrate(
        &mut self,
        mesh: &Mesh,
        flit_in: &mut [Vec<DelayPipe<Flit>>],
        credit_back: &mut [Vec<DelayPipe<usize>>],
        link_delay: u64,
    ) -> u64 {
        let rebal = &mut self.rebal;
        debug_assert_eq!(rebal.new_ranges.len(), self.ranges.len());
        // 1. Strip every shard's event state into the scratch, due
        //    cycles intact. The cached source horizons are partition
        //    scoped only in the sense that a new owner re-votes them;
        //    reset forces that re-vote.
        rebal.deliveries.clear();
        rebal.credits.clear();
        rebal.flits.clear();
        for aux in &mut self.aux {
            aux.wheel.drain_pending_into(&mut rebal.deliveries);
            aux.remote_credits.drain_pending_into(&mut rebal.credits);
            aux.src_next = 0;
        }
        // 2. Staged boundary mail (published during cycle N, not yet
        //    applied by its receivers).
        self.mail.drain_all(&mut rebal.flits, &mut rebal.credits);
        // 3. Install the new partition.
        let mut moved = 0u64;
        self.ranges.copy_from_slice(&rebal.new_ranges);
        for (i, &(lo, hi)) in self.ranges.iter().enumerate() {
            for slot in &mut self.node_shard[lo..hi] {
                if *slot != i as u32 {
                    moved += 1;
                    *slot = i as u32;
                }
            }
        }
        // 4. Re-home everything onto the new owners.
        let local = mesh.local_port();
        for &(at, d) in &rebal.deliveries {
            let node = d.node as usize;
            let owner = self.node_shard[node] as usize;
            let port = d.port as usize;
            let seam_upstream = (d.credit && port != local)
                .then(|| {
                    mesh.neighbor(node, port)
                        .expect("credit on an unwired port")
                })
                .filter(|&up| self.node_shard[up] as usize != owner);
            if let Some(up) = seam_upstream {
                // Convert the pipe's pending credits for the moved
                // consumer; a later delivery for the same (now empty)
                // pipe converts nothing and is likewise dropped.
                rebal.pipe_credits.clear();
                credit_back[node][port].drain_all_into(&mut rebal.pipe_credits);
                let up_owner = self.node_shard[up] as usize;
                for &(due, vc) in &rebal.pipe_credits {
                    self.aux[up_owner].remote_credits.schedule(
                        due,
                        CreditMsg {
                            node: up as u32,
                            port: mesh.opposite(port) as u8,
                            vc: vc as u32,
                            due,
                        },
                    );
                }
            } else {
                self.aux[owner].wheel.schedule(at, d);
            }
        }
        for &(due, m) in &rebal.credits {
            let owner = self.node_shard[m.node as usize] as usize;
            self.aux[owner].remote_credits.schedule(due, m);
        }
        for m in &rebal.flits {
            let node = m.node as usize;
            let owner = self.node_shard[node] as usize;
            flit_in[node][m.port as usize].push(m.at, m.flit);
            self.aux[owner].wheel.schedule(
                m.at + 1 + link_delay,
                Delivery {
                    node: m.node,
                    port: m.port,
                    credit: false,
                },
            );
        }
        moved
    }
}

/// Read-only environment shared by every shard during a cycle.
pub(crate) struct ShardEnv<'a> {
    pub mesh: Mesh,
    pub pattern: &'a TrafficPattern,
    pub route_table: &'a RouteTable,
    /// The compiled fault plan, when the run has one. Shared read-only;
    /// every fault decision is a pure function of (plan, seed, cycle),
    /// so shards need no coordination to agree on it.
    pub fault: Option<&'a FaultModel>,
    pub node_shard: &'a [u32],
    pub link_delay: u64,
    pub credit_latency: u64,
    pub packet_len: u32,
    pub vcs: usize,
    pub mail: &'a Mailboxes,
    pub outs: &'a [Mutex<ShardOut>],
    /// Rebalance epoch length in executed cycles; `0` disables metering
    /// entirely (the per-event counter writes are skipped).
    pub rebalance_epoch: u64,
    /// Whether phase spans are being collected (telemetry + phase
    /// timing): shards stamp wall-clock phase durations into their
    /// `ShardOut` each cycle.
    pub trace: bool,
}

/// One shard's disjoint mutable view of the network: slices of the flat
/// per-node state plus its persistent aux. Shards never alias — every
/// cross-shard effect travels through [`Mailboxes`].
pub(crate) struct ShardCtx<'a> {
    pub idx: usize,
    /// First node of the shard (global index of `routers[0]`).
    pub lo: usize,
    pub routers: &'a mut [Router],
    pub sources: &'a mut [Source],
    pub flit_in: &'a mut [Vec<DelayPipe<Flit>>],
    pub credit_back: &'a mut [Vec<DelayPipe<usize>>],
    /// Reassembly slots of this shard's nodes (`(hi - lo) * vcs` entries).
    pub eject_slots: &'a mut [(PacketId, u32)],
    /// Clip-at-head slots of this shard's nodes' output links
    /// (`(hi - lo) * ports * vcs` entries).
    pub clip_out: &'a mut [ClipSlot],
    /// Clip-at-head slots of this shard's nodes' injection channels
    /// (`(hi - lo) * vcs` entries — sources interleave packets across
    /// their injection VCs).
    pub clip_in: &'a mut [ClipSlot],
    /// Per-node drop counters of this shard's nodes.
    pub drops: &'a mut [DropStats],
    pub active: &'a mut [bool],
    pub aux: &'a mut ShardAux,
    /// This shard's slice of the per-node work meters (current epoch).
    pub work_epoch: &'a mut [u64],
    /// This shard's slice of the per-node work EWMAs.
    pub work_ewma: &'a mut [u64],
}

impl ShardCtx<'_> {
    /// Phase 0: applies the boundary mail other shards published last
    /// round. Flits are pushed into this shard's own delay pipes with
    /// their original emission cycle (`FlitMsg::at`), so they deliver at
    /// exactly the cycle a same-shard departure would have; credits are
    /// parked on the `remote_credits` wheel by their absolute due cycle,
    /// and the ones due *this* cycle are applied (pure commuting counter
    /// increments — the serial engine applies them in its delivery
    /// phase of the same cycle).
    pub(crate) fn begin_cycle(&mut self, env: &ShardEnv<'_>, now: u64) {
        for from in 0..env.mail.shards() {
            if from == self.idx {
                continue;
            }
            let mut slot = lock_mailbox(env.mail.flit_slot(from, self.idx));
            for m in slot.drain(..) {
                let i = m.node as usize - self.lo;
                self.flit_in[i][m.port as usize].push(m.at, m.flit);
                self.aux.wheel.schedule(
                    m.at + 1 + env.link_delay,
                    Delivery {
                        node: m.node,
                        port: m.port,
                        credit: false,
                    },
                );
            }
            let mut slot = lock_mailbox(env.mail.credit_slot(from, self.idx));
            for m in slot.drain(..) {
                self.aux.remote_credits.schedule(m.due, m);
            }
        }
        let mut due = self.aux.remote_credits.take_due(now);
        for m in due.drain(..) {
            self.routers[m.node as usize - self.lo].accept_credit(
                m.port as usize,
                m.vc as usize,
                now,
            );
        }
        self.aux.remote_credits.restore(now, due);
    }

    /// Phase 1a: drains every pipe delivery due at `now` on this shard's
    /// wheel. Mirrors the serial engines' delivery phase. Every credit
    /// pipe drained here has a same-shard upstream (or the local
    /// source) — cross-shard credits travel by mailbox at emission time
    /// and never enter these pipes.
    pub(crate) fn phase_deliver(&mut self, env: &ShardEnv<'_>, now: u64) {
        let mesh = env.mesh;
        let local = mesh.local_port();
        let metering = env.rebalance_epoch != 0;
        let mut due = self.aux.wheel.take_due(now);
        for d in due.drain(..) {
            let node = d.node as usize;
            let i = node - self.lo;
            let port = d.port as usize;
            if d.credit {
                while let Some(vc) = self.credit_back[i][port].pop_ready(now) {
                    if port == local {
                        self.sources[i].credit(vc);
                    } else {
                        let upstream = mesh
                            .neighbor(node, port)
                            .expect("credit on an unwired port");
                        debug_assert_eq!(
                            env.node_shard[upstream] as usize, self.idx,
                            "cross-shard credit leaked into a credit pipe"
                        );
                        self.routers[upstream - self.lo].accept_credit(
                            mesh.opposite(port),
                            vc,
                            now,
                        );
                    }
                }
            } else {
                let mut popped = 0u64;
                while let Some(flit) = self.flit_in[i][port].pop_ready(now) {
                    self.routers[i].accept_flit(port, flit, now);
                    self.active[i] = true;
                    popped += 1;
                }
                if metering {
                    self.work_epoch[i] += popped;
                }
            }
        }
        self.aux.wheel.restore(now, due);
    }

    /// Phase 1b: steps this shard's sources in node order, recording the
    /// created packet ids for the serial tagging commit.
    pub(crate) fn phase_sources(&mut self, env: &ShardEnv<'_>, now: u64) {
        let mesh = env.mesh;
        let local = mesh.local_port();
        let mut step = std::mem::take(&mut self.aux.step_buf);
        let mut out = lock_mailbox(&env.outs[self.idx]);
        for i in 0..self.sources.len() {
            self.sources[i].step_into(now, &mesh, env.pattern, &mut step);
            out.created.extend_from_slice(&step.created);
            if let Some(flit) = step.injected {
                out.injected += 1;
                let reason = env.fault.and_then(|fm| {
                    clip(&mut self.clip_in[i * env.vcs + flit.vc], &flit, || {
                        fm.injection_drop(self.lo + i, flit.dest, now, flit.packet)
                    })
                });
                if let Some(reason) = reason {
                    // Mirror of the serial engines' injection clip:
                    // bounce the credit, account the drop.
                    self.sources[i].credit(flit.vc);
                    self.drops[i].count(reason, flit.kind.is_head());
                    out.drop_stats.count(reason, flit.kind.is_head());
                    if flit.kind.is_head() {
                        out.drops.push(flit.packet);
                    }
                    continue;
                }
                self.flit_in[i][local].push(now, flit);
                self.aux.wheel.schedule(
                    now + 1 + env.link_delay,
                    Delivery {
                        node: (self.lo + i) as u32,
                        port: local as u8,
                        credit: false,
                    },
                );
            }
        }
        drop(out);
        self.aux.step_buf = step;
    }

    /// Phase 2: ticks this shard's active routers in node order.
    /// Cross-shard departures and credits are staged in the mailboxes at
    /// emission time (tagged with their emission/due cycle); ejections
    /// and channel-load events are recorded for the serial commit.
    pub(crate) fn phase_tick(&mut self, env: &ShardEnv<'_>, now: u64) {
        let mesh = env.mesh;
        let local = mesh.local_port();
        let metering = env.rebalance_epoch != 0;
        self.aux.busy = false;
        self.aux.sent_mail = false;

        let mut buf = std::mem::take(&mut self.aux.tick_buf);
        let mut out = lock_mailbox(&env.outs[self.idx]);
        for i in 0..self.routers.len() {
            if !self.active[i] {
                continue;
            }
            let node = self.lo + i;
            let oracle = NodeOracle {
                table: env.route_table,
                node,
                fault: env.fault.map(|f| (f, f.epoch_at(now))),
            };
            self.routers[i].tick_into(now, &oracle, &mut buf);
            self.aux.router_ticks += 1;
            out.ticks += 1;
            if metering {
                self.work_epoch[i] += W_TICK + buf.departures.len() as u64;
            }
            for dep in buf.departures.drain(..) {
                out.loads.push((node as u32, dep.out_port as u8));
                if env.fault.is_some()
                    && self.clip_departure(env, now, node, dep.out_port, &dep.flit, &mut out)
                {
                    continue;
                }
                if dep.out_port == local {
                    self.eject(env, node, dep.flit, &mut out);
                } else {
                    let next = mesh
                        .neighbor(node, dep.out_port)
                        .expect("departure off the mesh edge");
                    let in_port = mesh.opposite(dep.out_port);
                    let owner = env.node_shard[next] as usize;
                    if owner == self.idx {
                        self.flit_in[next - self.lo][in_port].push(now, dep.flit);
                        self.aux.wheel.schedule(
                            now + 1 + env.link_delay,
                            Delivery {
                                node: next as u32,
                                port: in_port as u8,
                                credit: false,
                            },
                        );
                    } else {
                        out.mail_flits += 1;
                        self.aux.out_flits[owner].push(FlitMsg {
                            node: next as u32,
                            port: in_port as u8,
                            flit: dep.flit,
                            at: now,
                        });
                    }
                }
            }
            for c in buf.credits.drain(..) {
                let upstream = (c.in_port != local).then(|| {
                    mesh.neighbor(node, c.in_port)
                        .expect("credit on an unwired port")
                });
                let owner = upstream.map_or(self.idx, |up| env.node_shard[up] as usize);
                if owner == self.idx {
                    self.credit_back[i][c.in_port].push(now, c.vc);
                    self.aux.wheel.schedule(
                        now + 1 + env.credit_latency,
                        Delivery {
                            node: node as u32,
                            port: c.in_port as u8,
                            credit: true,
                        },
                    );
                } else {
                    out.mail_credits += 1;
                    self.aux.out_credits[owner].push(CreditMsg {
                        node: upstream.expect("cross-shard credit has an upstream") as u32,
                        port: mesh.opposite(c.in_port) as u8,
                        vc: c.vc as u32,
                        due: now + 1 + env.credit_latency,
                    });
                }
            }
            if self.routers[i].is_quiescent() {
                self.active[i] = false;
            } else {
                self.aux.busy = true;
            }
        }
        drop(out);
        self.aux.tick_buf = buf;

        // Publish staged boundary mail for the owners' next begin phase.
        for to in 0..env.mail.shards() {
            if to == self.idx {
                continue;
            }
            if !self.aux.out_flits[to].is_empty() {
                let mut slot = lock_mailbox(env.mail.flit_slot(self.idx, to));
                slot.extend(self.aux.out_flits[to].drain(..));
                self.aux.sent_mail = true;
            }
            if !self.aux.out_credits[to].is_empty() {
                let mut slot = lock_mailbox(env.mail.credit_slot(self.idx, to));
                slot.extend(self.aux.out_credits[to].drain(..));
                self.aux.sent_mail = true;
            }
        }
    }

    /// Casts this shard's quiescence vote after executing cycle `now`:
    /// the earliest future cycle at which it has any work. A busy shard
    /// (active routers, or mail published this cycle that the receiver
    /// must apply next round) votes `now + 1`; an idle one votes the
    /// earliest of its pending wheel deliveries, parked remote credits,
    /// and the next possible source-injection crossing (cached — a quiet
    /// source's crossing schedule is fixed arithmetic, so the cache
    /// stays valid until reached).
    pub(crate) fn vote(&mut self, lockstep: &Lockstep, now: u64) {
        let next = if self.aux.busy || self.aux.sent_mail {
            now + 1
        } else {
            let mut v = self.aux.wheel.next_due().unwrap_or(u64::MAX);
            v = v.min(self.aux.remote_credits.next_due().unwrap_or(u64::MAX));
            if now + 1 >= self.aux.src_next {
                let mut s = u64::MAX;
                for src in self.sources.iter() {
                    let q = src.quiet_horizon(SRC_SCAN_CAP);
                    s = s.min(now + 1 + q);
                    if q == 0 {
                        break; // cannot vote earlier than now + 1
                    }
                }
                self.aux.src_next = s;
            }
            v.min(self.aux.src_next)
        };
        lockstep.next_work.fetch_min(next, Ordering::AcqRel);
    }

    /// Counts the just-executed cycle against the rebalance epoch; at an
    /// epoch boundary, folds this shard's slice of the work meters into
    /// the per-node EWMAs (`ewma ← (3·ewma + epoch) / 4`, integer — the
    /// fold is per node, so it is identical under every partition) and
    /// returns the shard's EWMA total. No-op when metering is off.
    pub(crate) fn end_cycle(&mut self, epoch: u64) -> Option<u64> {
        if epoch == 0 {
            return None;
        }
        self.aux.executed += 1;
        if !self.aux.executed.is_multiple_of(epoch) {
            return None;
        }
        let mut total = 0u64;
        for (w, e) in self.work_ewma.iter_mut().zip(self.work_epoch.iter_mut()) {
            *w = (*w * 3 + *e) / 4;
            total += *w;
            *e = 0;
        }
        Some(total)
    }

    /// [`ShardCtx::end_cycle`] for the threaded run: publishes the epoch
    /// total for the leader's next serial section.
    pub(crate) fn finish_cycle(&mut self, env: &ShardEnv<'_>, lockstep: &Lockstep) {
        if let Some(total) = self.end_cycle(env.rebalance_epoch) {
            lockstep.shard_work[self.idx].store(total, Ordering::Release);
        }
    }

    /// Executes one full cycle (the fused compute phase) and votes.
    /// With tracing on, the wall-clock duration of each fused phase is
    /// accumulated into this shard's `ShardOut` for the leader's span
    /// log.
    pub(crate) fn run_cycle(&mut self, env: &ShardEnv<'_>, lockstep: &Lockstep, now: u64) {
        if env.trace {
            let t0 = std::time::Instant::now();
            self.begin_cycle(env, now);
            self.phase_deliver(env, now);
            let t1 = std::time::Instant::now();
            self.phase_sources(env, now);
            let t2 = std::time::Instant::now();
            self.phase_tick(env, now);
            let t3 = std::time::Instant::now();
            let deltas = [t1 - t0, t2 - t1, t3 - t2].map(|d| d.as_nanos() as u64);
            let mut out = lock_mailbox(&env.outs[self.idx]);
            for (slot, d) in out.span_nanos.iter_mut().zip(deltas) {
                *slot += d;
            }
            drop(out);
        } else {
            self.begin_cycle(env, now);
            self.phase_deliver(env, now);
            self.phase_sources(env, now);
            self.phase_tick(env, now);
        }
        self.finish_cycle(env, lockstep);
        self.vote(lockstep, now);
    }

    /// Fast-forwards this shard over the quiescent cycles
    /// `[now, target)`: sources advance their accumulators by pure
    /// repeated addition (bit-identical to stepping them through cycles
    /// that inject nothing), and the wheels skip ahead (debug-asserting
    /// that no pending delivery is jumped — the vote guarantees it).
    pub(crate) fn fast_forward(&mut self, now: u64, target: u64) {
        debug_assert!(target > now, "fast-forward must move forward");
        for src in self.sources.iter_mut() {
            src.fast_forward(target - now);
        }
        self.aux.wheel.advance_to(target - 1);
        self.aux.remote_credits.advance_to(target - 1);
    }

    /// The shard-local mirror of the serial engines' departure clip
    /// (see [`crate::sim::Network`]): same slot indexing relative to the
    /// shard's base node, same synchronous credit reclaim — the reclaim
    /// touches only this shard's own router, so no mail is needed and
    /// the result is identical under every partition.
    fn clip_departure(
        &mut self,
        env: &ShardEnv<'_>,
        now: u64,
        node: usize,
        out_port: usize,
        flit: &Flit,
        out: &mut ShardOut,
    ) -> bool {
        let Some(fm) = env.fault else {
            return false;
        };
        let local = env.mesh.local_port();
        let i = node - self.lo;
        let reason = if out_port == local && flit.dest != node {
            Some(DropReason::Stranded)
        } else {
            let slot = &mut self.clip_out[(i * env.mesh.ports() + out_port) * env.vcs + flit.vc];
            clip(slot, flit, || {
                fm.link_drop(node, out_port, now, flit.packet)
            })
        };
        let Some(reason) = reason else {
            return false;
        };
        if out_port != local {
            self.routers[i].accept_credit(out_port, flit.vc, now);
        }
        self.drops[i].count(reason, flit.kind.is_head());
        out.drop_stats.count(reason, flit.kind.is_head());
        if flit.kind.is_head() {
            out.drops.push(flit.packet);
        }
        true
    }

    /// Consumes an ejected flit at its destination — the shard-local half
    /// of [`crate::sim::Network`]'s ejection: reassembly and conservation
    /// checks happen here; the order-sensitive tagging/latency updates are
    /// deferred to the serial commit via `out.tails`.
    fn eject(&mut self, env: &ShardEnv<'_>, node: usize, flit: Flit, out: &mut ShardOut) {
        assert_eq!(flit.dest, node, "flit ejected at the wrong node");
        out.ejected += 1;
        let slot = &mut self.eject_slots[(node - self.lo) * env.vcs + flit.vc];
        if slot.1 == 0 {
            *slot = (flit.packet, 1);
        } else {
            assert_eq!(
                slot.0, flit.packet,
                "packets interleaved within one ejection VC"
            );
            slot.1 += 1;
        }
        if flit.kind.is_tail() {
            let received = slot.1;
            slot.1 = 0;
            assert_eq!(
                received, env.packet_len,
                "tail ejected before the whole packet arrived"
            );
            out.tails.push((flit.packet, flit.created, node as u32));
        }
    }
}

/// The worker-thread loop: one gate episode per round, mirroring the
/// coordinating thread's sequence in [`crate::sim::Network::run`]
/// exactly. A round either executes one cycle (fused compute phase) or
/// fast-forwards a granted quiescent stretch.
pub(crate) fn worker_loop(
    mut ctx: ShardCtx<'_>,
    env: &ShardEnv<'_>,
    lockstep: &Lockstep,
    mut now: u64,
) {
    let party = ctx.idx;
    let _guard = PoisonGuard(&lockstep.gate);
    loop {
        lockstep.gate.arrive(party);
        if lockstep.stop.load(Ordering::Acquire) {
            return;
        }
        let target = lockstep.skip_to.load(Ordering::Acquire);
        if target > now {
            ctx.fast_forward(now, target);
            now = target;
        } else {
            ctx.run_cycle(env, lockstep, now);
            now += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives the leader-gate protocol: workers increment then arrive,
    /// the leader must observe exactly one increment per worker per
    /// round while it holds the serial section.
    fn gate_round_trips(kind: BarrierKind, parties: usize) {
        let gate = Gate::new(kind, parties);
        let counter = AtomicU64::new(0);
        let rounds = 200u64;
        std::thread::scope(|scope| {
            for p in 1..parties {
                let (gate, counter) = (&gate, &counter);
                scope.spawn(move || {
                    for _ in 0..rounds {
                        counter.fetch_add(1, Ordering::AcqRel);
                        gate.arrive(p);
                    }
                });
            }
            for round in 0..rounds {
                gate.wait_followers();
                // Serial section: every worker has arrived this round and
                // none has started the next one.
                assert_eq!(
                    counter.load(Ordering::Acquire),
                    (round + 1) * (parties as u64 - 1)
                );
                gate.release();
            }
        });
    }

    #[test]
    fn spin_gate_synchronizes_rounds() {
        gate_round_trips(BarrierKind::Spin, 4);
    }

    #[test]
    fn tree_gate_synchronizes_rounds() {
        // 7 parties exercises a two-level tree with an incomplete last
        // row; 2 exercises the single-child root.
        gate_round_trips(BarrierKind::Tree, 7);
        gate_round_trips(BarrierKind::Tree, 2);
    }

    #[test]
    fn single_party_gate_never_blocks() {
        for kind in [BarrierKind::Spin, BarrierKind::Tree] {
            let gate = Gate::new(kind, 1);
            for _ in 0..10 {
                gate.wait_followers();
                gate.release();
            }
        }
    }

    #[test]
    #[should_panic(expected = "sibling shard panicked")]
    fn poisoned_gate_panics_waiters() {
        let gate = Gate::new(BarrierKind::Spin, 2);
        gate.poison();
        gate.arrive(1);
    }

    #[test]
    #[should_panic(expected = "sibling shard panicked")]
    fn poisoned_tree_gate_panics_waiters() {
        let gate = Gate::new(BarrierKind::Tree, 2);
        gate.poison();
        gate.arrive(1);
    }

    #[test]
    fn poison_guard_fires_only_on_unwind() {
        let gate = Gate::new(BarrierKind::Spin, 1);
        {
            let _guard = PoisonGuard(&gate);
        }
        gate.wait_followers(); // not poisoned by a clean drop
        gate.release();

        let gate = std::sync::Arc::new(Gate::new(BarrierKind::Spin, 2));
        let g = std::sync::Arc::clone(&gate);
        let worker = std::thread::spawn(move || {
            let _guard = PoisonGuard(&g);
            panic!("boom");
        });
        assert!(worker.join().is_err());
        assert!(std::panic::catch_unwind(|| gate.arrive(1)).is_err());
    }

    #[test]
    fn mailbox_poison_reports_the_sibling_panic() {
        // A shard that panics while holding a mailbox lock poisons the
        // mutex; the sibling must die with the one clear lockstep
        // message, not a generic PoisonError unwrap.
        let mail = std::sync::Arc::new(Mutex::new(Vec::<u32>::new()));
        let m = std::sync::Arc::clone(&mail);
        let worker = std::thread::spawn(move || {
            let _guard = m.lock().unwrap();
            panic!("original failure");
        });
        assert!(worker.join().is_err());
        let err = std::panic::catch_unwind(|| {
            drop(lock_mailbox(&mail));
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("sibling shard panicked"), "got: {msg}");
    }
}
