//! Deterministic sharded-parallel execution of the network simulator.
//!
//! The [`crate::config::EngineKind::ParallelShards`] engine partitions the
//! mesh's routers into contiguous per-thread shards
//! ([`crate::topology::Mesh::shard_ranges`]) and executes every cycle as a
//! barrier-separated protocol whose results are **bit-identical** to the
//! serial event-driven engine for any shard count and any thread
//! schedule:
//!
//! 1. **Deliver** (parallel) — each shard drains the flit/credit pipe
//!    deliveries due on its own wheel. Flits land in the shard's own
//!    routers; credits whose upstream lives in another shard are staged
//!    in a per-shard-pair mailbox instead of written cross-shard. Then
//!    the shard steps its own sources, recording created packet ids (in
//!    node order) for the serial commit.
//! 2. **Tick** (parallel, after a barrier) — each shard applies the
//!    credit mailboxes addressed to it (credit delivery commutes: it only
//!    increments counters) and ticks its active routers in node order
//!    against an immutable snapshot of cross-shard inputs. Departures to
//!    a neighbor in another shard are staged in a flit mailbox; tail
//!    ejections, channel-load events, and ejection counts are recorded
//!    per shard in node order.
//! 3. **Apply + commit** (after a barrier) — each shard pushes the flit
//!    mailboxes addressed to it into its own delivery pipes (same-cycle
//!    pushes deliver next cycle at the earliest, so ordering within the
//!    phase is irrelevant), while the coordinating thread replays every
//!    order-sensitive accumulation **serially in fixed node order**:
//!    sample tagging from the created lists, then latency / histogram /
//!    channel-load updates from the ejection records. Per-shard state is
//!    merged in node order, never in thread-completion order, so the
//!    floating-point accumulators see exactly the serial engine's sample
//!    sequence.
//!
//! Why this is bit-identical: within one cycle the serial engine's
//! delivery operations commute (disjoint queues and counters — the same
//! argument the event engine rests on), sources interact with nothing but
//! their own state and their own injection pipe, and routers only
//! interact through pipes with ≥ 1 cycle of latency. The only
//! order-sensitive state — the global tagging counter and the
//! floating-point latency accumulators — never leaves the serial commit.
//!
//! Everything here is allocation-free in steady state: mailboxes, wheels,
//! scratch buffers, and the per-cycle record vectors are retained and
//! reach a fixed capacity after warm-up (enforced by
//! `crates/network/tests/alloc_free_parallel.rs`).

use crate::routing::RouteTable;
use crate::sim::{Delivery, NodeOracle};
use crate::source::{Source, SourceStep};
use crate::topology::Mesh;
use crate::traffic::TrafficPattern;
use router_core::{DelayPipe, EventWheel, Flit, PacketId, Router, TickOutput};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// A reusable spin-then-yield barrier for the per-cycle phase lockstep.
///
/// `std::sync::Barrier` parks threads on a futex; at the microsecond
/// cycle times of this simulator the wake-up latency would dominate the
/// compute phase, so arrivals spin briefly before yielding (the yield
/// fallback keeps oversubscribed configurations — more shards than
/// cores — live instead of burning a core per waiter).
///
/// The barrier is *poisonable*: a shard that panics mid-phase poisons it
/// from a drop guard, and every waiter converts the poison into its own
/// panic instead of deadlocking the lockstep.
#[derive(Debug)]
pub(crate) struct SpinBarrier {
    parties: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
    poisoned: AtomicBool,
}

impl SpinBarrier {
    pub(crate) fn new(parties: usize) -> Self {
        assert!(parties >= 1, "a barrier needs at least one party");
        SpinBarrier {
            parties,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Marks the barrier dead; every current and future waiter panics.
    pub(crate) fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
    }

    fn check_poison(&self) {
        assert!(
            !self.poisoned.load(Ordering::Acquire),
            "a sibling shard panicked; abandoning the cycle lockstep"
        );
    }

    /// Blocks until all parties have arrived at this generation.
    pub(crate) fn wait(&self) {
        self.check_poison();
        let generation = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            // Last arriver releases the generation; resetting `arrived`
            // first is safe because nobody re-enters until they observe
            // the new generation (which happens-after both stores).
            self.arrived.store(0, Ordering::Release);
            self.generation
                .store(generation.wrapping_add(1), Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == generation {
                self.check_poison();
                spins += 1;
                if spins < 128 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
        self.check_poison();
    }
}

/// Poisons the barrier if the holder unwinds, so sibling shards panic
/// out of their waits instead of spinning forever.
pub(crate) struct PoisonGuard<'a>(pub &'a SpinBarrier);

impl Drop for PoisonGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

/// A flit crossing a shard boundary: deliver `flit` into input
/// `(node, port)` of the receiving shard.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FlitMsg {
    pub node: u32,
    pub port: u8,
    pub flit: Flit,
}

/// A credit crossing a shard boundary: return one credit for output
/// `(node, port)`, VC `vc`, of the receiving shard.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CreditMsg {
    pub node: u32,
    pub port: u8,
    pub vc: u32,
}

/// Preallocated per-shard-pair mailboxes. Slot `(from, to)` is written by
/// shard `from` at the end of its compute phase and drained by shard `to`
/// in the following phase; the barrier between the two keeps every lock
/// uncontended, and the retained `Vec`s make the exchange allocation-free
/// once capacities plateau.
#[derive(Debug)]
pub(crate) struct Mailboxes {
    shards: usize,
    flits: Vec<Mutex<Vec<FlitMsg>>>,
    credits: Vec<Mutex<Vec<CreditMsg>>>,
}

impl Mailboxes {
    pub(crate) fn new(shards: usize) -> Self {
        Mailboxes {
            shards,
            flits: (0..shards * shards)
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
            credits: (0..shards * shards)
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
        }
    }

    pub(crate) fn shards(&self) -> usize {
        self.shards
    }

    fn flit_slot(&self, from: usize, to: usize) -> &Mutex<Vec<FlitMsg>> {
        &self.flits[from * self.shards + to]
    }

    fn credit_slot(&self, from: usize, to: usize) -> &Mutex<Vec<CreditMsg>> {
        &self.credits[from * self.shards + to]
    }
}

/// What one shard reports to the serial commit each cycle. Every vector
/// is filled in node order during the parallel phases and drained by the
/// coordinating thread, so concatenating the shards in index order
/// replays the serial engine's exact event sequence.
#[derive(Debug, Default)]
pub(crate) struct ShardOut {
    /// Packets created this cycle, in node order.
    pub created: Vec<PacketId>,
    /// Tail-flit ejections this cycle, in node order: `(packet,
    /// creation cycle)`.
    pub tails: Vec<(PacketId, u64)>,
    /// Channel-load events this cycle: `(node, out_port)`.
    pub loads: Vec<(u32, u8)>,
    /// Flits ejected this cycle.
    pub ejected: u64,
}

/// Per-shard state that persists across cycles (the shard's half of the
/// event-driven machinery plus its outbound mailbox staging).
#[derive(Debug)]
pub(crate) struct ShardAux {
    /// Scheduled pipe deliveries for this shard's nodes.
    pub wheel: EventWheel<Delivery>,
    /// Reused router tick output buffer.
    pub tick_buf: TickOutput,
    /// Reused source step buffer.
    pub step_buf: SourceStep,
    /// Router ticks executed by this shard (work accounting).
    pub router_ticks: u64,
    /// Outbound flit staging, one buffer per destination shard.
    out_flits: Vec<Vec<FlitMsg>>,
    /// Outbound credit staging, one buffer per destination shard.
    out_credits: Vec<Vec<CreditMsg>>,
}

impl ShardAux {
    pub(crate) fn new(shards: usize, horizon: u64) -> Self {
        ShardAux {
            wheel: EventWheel::new(horizon),
            tick_buf: TickOutput::default(),
            step_buf: SourceStep::default(),
            router_ticks: 0,
            out_flits: (0..shards).map(|_| Vec::new()).collect(),
            out_credits: (0..shards).map(|_| Vec::new()).collect(),
        }
    }
}

/// The full sharded-engine state owned by a `Network` (present only when
/// the engine is `ParallelShards`).
#[derive(Debug)]
pub(crate) struct ShardSet {
    /// Contiguous `[lo, hi)` node range per shard.
    pub ranges: Vec<(usize, usize)>,
    /// Owning shard of every node (`O(1)` boundary lookups).
    pub node_shard: Vec<u32>,
    /// Persistent per-shard engine state.
    pub aux: Vec<ShardAux>,
    /// The per-shard-pair exchange.
    pub mail: Mailboxes,
    /// Per-shard commit records.
    pub outs: Vec<Mutex<ShardOut>>,
}

impl ShardSet {
    pub(crate) fn new(mesh: &Mesh, shards: usize, horizon: u64) -> Self {
        let ranges = mesh.shard_ranges(shards);
        let s = ranges.len();
        let mut node_shard = vec![0u32; mesh.nodes()];
        for (i, &(lo, hi)) in ranges.iter().enumerate() {
            for slot in &mut node_shard[lo..hi] {
                *slot = i as u32;
            }
        }
        ShardSet {
            ranges,
            node_shard,
            aux: (0..s).map(|_| ShardAux::new(s, horizon)).collect(),
            mail: Mailboxes::new(s),
            outs: (0..s).map(|_| Mutex::new(ShardOut::default())).collect(),
        }
    }

    /// Router ticks executed across all shards.
    pub(crate) fn router_ticks(&self) -> u64 {
        self.aux.iter().map(|a| a.router_ticks).sum()
    }
}

/// Read-only environment shared by every shard during a cycle.
pub(crate) struct ShardEnv<'a> {
    pub mesh: Mesh,
    pub pattern: &'a TrafficPattern,
    pub route_table: &'a RouteTable,
    pub node_shard: &'a [u32],
    pub link_delay: u64,
    pub credit_latency: u64,
    pub packet_len: u32,
    pub vcs: usize,
    pub mail: &'a Mailboxes,
    pub outs: &'a [Mutex<ShardOut>],
}

/// One shard's disjoint mutable view of the network: slices of the flat
/// per-node state plus its persistent aux. Shards never alias — every
/// cross-shard effect travels through [`Mailboxes`].
pub(crate) struct ShardCtx<'a> {
    pub idx: usize,
    /// First node of the shard (global index of `routers[0]`).
    pub lo: usize,
    pub routers: &'a mut [Router],
    pub sources: &'a mut [Source],
    pub flit_in: &'a mut [Vec<DelayPipe<Flit>>],
    pub credit_back: &'a mut [Vec<DelayPipe<usize>>],
    /// Reassembly slots of this shard's nodes (`(hi - lo) * vcs` entries).
    pub eject_slots: &'a mut [(PacketId, u32)],
    pub active: &'a mut [bool],
    pub aux: &'a mut ShardAux,
}

impl ShardCtx<'_> {
    /// Phase 1a: drains every pipe delivery due at `now` on this shard's
    /// wheel. Mirrors the serial engines' delivery phase; credits whose
    /// upstream lives in another shard are staged for that shard's
    /// mailbox (flushed here, applied by the owner before it ticks).
    pub(crate) fn phase_deliver(&mut self, env: &ShardEnv<'_>, now: u64) {
        let mesh = env.mesh;
        let local = mesh.local_port();
        let mut due = self.aux.wheel.take_due(now);
        for d in due.drain(..) {
            let node = d.node as usize;
            let i = node - self.lo;
            let port = d.port as usize;
            if d.credit {
                while let Some(vc) = self.credit_back[i][port].pop_ready(now) {
                    if port == local {
                        self.sources[i].credit(vc);
                    } else {
                        let upstream = mesh
                            .neighbor(node, port)
                            .expect("credit on an unwired port");
                        let out_port = mesh.opposite(port);
                        let owner = env.node_shard[upstream] as usize;
                        if owner == self.idx {
                            self.routers[upstream - self.lo].accept_credit(out_port, vc, now);
                        } else {
                            self.aux.out_credits[owner].push(CreditMsg {
                                node: upstream as u32,
                                port: out_port as u8,
                                vc: vc as u32,
                            });
                        }
                    }
                }
            } else {
                while let Some(flit) = self.flit_in[i][port].pop_ready(now) {
                    self.routers[i].accept_flit(port, flit, now);
                    self.active[i] = true;
                }
            }
        }
        self.aux.wheel.restore(now, due);

        // Publish staged credits for the owning shards' tick phase.
        for to in 0..env.mail.shards() {
            if to != self.idx && !self.aux.out_credits[to].is_empty() {
                let mut slot = env
                    .mail
                    .credit_slot(self.idx, to)
                    .lock()
                    .expect("mailbox poisoned");
                slot.extend(self.aux.out_credits[to].drain(..));
            }
        }
    }

    /// Phase 1b: steps this shard's sources in node order, recording the
    /// created packet ids for the serial tagging commit.
    pub(crate) fn phase_sources(&mut self, env: &ShardEnv<'_>, now: u64) {
        let mesh = env.mesh;
        let local = mesh.local_port();
        let mut step = std::mem::take(&mut self.aux.step_buf);
        let mut out = env.outs[self.idx].lock().expect("shard out poisoned");
        for i in 0..self.sources.len() {
            self.sources[i].step_into(now, &mesh, env.pattern, &mut step);
            out.created.extend_from_slice(&step.created);
            if let Some(flit) = step.injected {
                self.flit_in[i][local].push(now, flit);
                self.aux.wheel.schedule(
                    now + 1 + env.link_delay,
                    Delivery {
                        node: (self.lo + i) as u32,
                        port: local as u8,
                        credit: false,
                    },
                );
            }
        }
        drop(out);
        self.aux.step_buf = step;
    }

    /// Phase 2: applies inbound credit mailboxes, then ticks this shard's
    /// active routers in node order. Cross-shard departures are staged in
    /// the flit mailboxes; ejections and channel-load events are recorded
    /// for the serial commit.
    pub(crate) fn phase_tick(&mut self, env: &ShardEnv<'_>, now: u64) {
        let mesh = env.mesh;
        let local = mesh.local_port();

        // Credits staged by other shards during their delivery phase.
        // Application order is irrelevant (pure counter increments), but
        // iterate in shard order anyway for a deterministic trace.
        for from in 0..env.mail.shards() {
            if from == self.idx {
                continue;
            }
            let mut slot = env
                .mail
                .credit_slot(from, self.idx)
                .lock()
                .expect("mailbox poisoned");
            for m in slot.drain(..) {
                self.routers[m.node as usize - self.lo].accept_credit(
                    m.port as usize,
                    m.vc as usize,
                    now,
                );
            }
        }

        let mut buf = std::mem::take(&mut self.aux.tick_buf);
        let mut out = env.outs[self.idx].lock().expect("shard out poisoned");
        for i in 0..self.routers.len() {
            if !self.active[i] {
                continue;
            }
            let node = self.lo + i;
            let oracle = NodeOracle {
                table: env.route_table,
                node,
            };
            self.routers[i].tick_into(now, &oracle, &mut buf);
            self.aux.router_ticks += 1;
            for dep in buf.departures.drain(..) {
                out.loads.push((node as u32, dep.out_port as u8));
                if dep.out_port == local {
                    self.eject(env, node, dep.flit, &mut out);
                } else {
                    let next = mesh
                        .neighbor(node, dep.out_port)
                        .expect("departure off the mesh edge");
                    let in_port = mesh.opposite(dep.out_port);
                    let owner = env.node_shard[next] as usize;
                    if owner == self.idx {
                        self.flit_in[next - self.lo][in_port].push(now, dep.flit);
                        self.aux.wheel.schedule(
                            now + 1 + env.link_delay,
                            Delivery {
                                node: next as u32,
                                port: in_port as u8,
                                credit: false,
                            },
                        );
                    } else {
                        self.aux.out_flits[owner].push(FlitMsg {
                            node: next as u32,
                            port: in_port as u8,
                            flit: dep.flit,
                        });
                    }
                }
            }
            for c in buf.credits.drain(..) {
                self.credit_back[i][c.in_port].push(now, c.vc);
                self.aux.wheel.schedule(
                    now + 1 + env.credit_latency,
                    Delivery {
                        node: node as u32,
                        port: c.in_port as u8,
                        credit: true,
                    },
                );
            }
            if self.routers[i].is_quiescent() {
                self.active[i] = false;
            }
        }
        drop(out);
        self.aux.tick_buf = buf;

        // Publish staged boundary flits for the owners' apply phase.
        for to in 0..env.mail.shards() {
            if to != self.idx && !self.aux.out_flits[to].is_empty() {
                let mut slot = env
                    .mail
                    .flit_slot(self.idx, to)
                    .lock()
                    .expect("mailbox poisoned");
                slot.extend(self.aux.out_flits[to].drain(..));
            }
        }
    }

    /// Phase 3: applies inbound flit mailboxes — pushes every boundary
    /// flit into this shard's own delivery pipes with the emission cycle
    /// `now`, exactly as a same-shard departure would have been pushed.
    /// A push at `now` delivers at `now + 1 + link_delay` at the
    /// earliest, so nothing in this phase affects the cycle being
    /// committed.
    pub(crate) fn phase_apply(&mut self, env: &ShardEnv<'_>, now: u64) {
        for from in 0..env.mail.shards() {
            if from == self.idx {
                continue;
            }
            let mut slot = env
                .mail
                .flit_slot(from, self.idx)
                .lock()
                .expect("mailbox poisoned");
            for m in slot.drain(..) {
                let i = m.node as usize - self.lo;
                self.flit_in[i][m.port as usize].push(now, m.flit);
                self.aux.wheel.schedule(
                    now + 1 + env.link_delay,
                    Delivery {
                        node: m.node,
                        port: m.port,
                        credit: false,
                    },
                );
            }
        }
    }

    /// Consumes an ejected flit at its destination — the shard-local half
    /// of [`crate::sim::Network`]'s ejection: reassembly and conservation
    /// checks happen here; the order-sensitive tagging/latency updates are
    /// deferred to the serial commit via `out.tails`.
    fn eject(&mut self, env: &ShardEnv<'_>, node: usize, flit: Flit, out: &mut ShardOut) {
        assert_eq!(flit.dest, node, "flit ejected at the wrong node");
        out.ejected += 1;
        let slot = &mut self.eject_slots[(node - self.lo) * env.vcs + flit.vc];
        if slot.1 == 0 {
            *slot = (flit.packet, 1);
        } else {
            assert_eq!(
                slot.0, flit.packet,
                "packets interleaved within one ejection VC"
            );
            slot.1 += 1;
        }
        if flit.kind.is_tail() {
            let received = slot.1;
            slot.1 = 0;
            assert_eq!(
                received, env.packet_len,
                "tail ejected before the whole packet arrived"
            );
            out.tails.push((flit.packet, flit.created));
        }
    }
}

/// The worker-thread loop: one cycle per barrier generation, mirroring
/// the coordinating thread's phase sequence in
/// [`crate::sim::Network::run`] exactly (three waits per cycle).
pub(crate) fn worker_loop(
    mut ctx: ShardCtx<'_>,
    env: &ShardEnv<'_>,
    barrier: &SpinBarrier,
    stop: &AtomicBool,
    mut now: u64,
) {
    let _guard = PoisonGuard(barrier);
    loop {
        barrier.wait();
        if stop.load(Ordering::Acquire) {
            return;
        }
        ctx.phase_deliver(env, now);
        ctx.phase_sources(env, now);
        barrier.wait();
        ctx.phase_tick(env, now);
        barrier.wait();
        ctx.phase_apply(env, now);
        now += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn spin_barrier_synchronizes_phases() {
        let barrier = SpinBarrier::new(4);
        let counter = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for round in 0..100u64 {
                        counter.fetch_add(1, Ordering::AcqRel);
                        barrier.wait();
                        // Everyone incremented before anyone proceeds.
                        assert!(counter.load(Ordering::Acquire) >= (round + 1) * 4);
                        barrier.wait();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Acquire), 400);
    }

    #[test]
    fn single_party_barrier_never_blocks() {
        let barrier = SpinBarrier::new(1);
        for _ in 0..10 {
            barrier.wait();
        }
    }

    #[test]
    #[should_panic(expected = "sibling shard panicked")]
    fn poisoned_barrier_panics_waiters() {
        let barrier = SpinBarrier::new(2);
        barrier.poison();
        barrier.wait();
    }

    #[test]
    fn poison_guard_fires_only_on_unwind() {
        let barrier = SpinBarrier::new(1);
        {
            let _guard = PoisonGuard(&barrier);
        }
        barrier.wait(); // not poisoned by a clean drop

        let barrier = std::sync::Arc::new(SpinBarrier::new(2));
        let b = std::sync::Arc::clone(&barrier);
        let worker = std::thread::spawn(move || {
            let _guard = PoisonGuard(&b);
            panic!("boom");
        });
        assert!(worker.join().is_err());
        assert!(std::panic::catch_unwind(|| barrier.wait()).is_err());
    }
}
