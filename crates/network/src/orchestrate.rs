//! Orchestration glue: plugs the network simulator into the
//! [`runqueue`] batch layer.
//!
//! A batch point is `(config, seed, load)`; this module supplies the two
//! things `runqueue` is generic over — a stable configuration hash
//! ([`runqueue::JobConfig`] for [`NetworkConfig`]) and a runner that
//! turns one point into one [`runqueue::PointRecord`]
//! ([`NetworkRunner`]). Everything else (budgeting, priorities,
//! cancellation, dedup-resume, sinks) lives in `runqueue` and is shared
//! with any other workload.

use crate::config::{FaultKind, FaultTarget, NetworkConfig, RouterKind, RoutingAlgo};
use crate::sim::Network;
use crate::sweep::LoadPoint;
use crate::traffic::TrafficPattern;
use runqueue::{CancelToken, JobConfig, NodeDrops, PointKey, PointRecord, PointRunner};

/// FNV-1a, folded a word at a time.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xCBF2_9CE4_8422_2325)
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
}

impl JobConfig for NetworkConfig {
    /// Hashes every field that determines a run's *results* except the
    /// seed and the offered load (the other two components of a
    /// [`PointKey`]). Deliberately excluded, so dedup-resume recognizes
    /// reruns across result-neutral knobs: the engine (all engines are
    /// bit-identical by contract), the shard-rebalancing knob (partition
    /// choice never affects results, by the same contract), phase timing
    /// and the telemetry epoch (instrumentation only — snapshots observe
    /// the run without perturbing it), and the cancellation token.
    fn config_hash(&self) -> u64 {
        let mut h = Fnv::new();
        h.u64(self.mesh.radix() as u64);
        h.u64(self.mesh.dims() as u64);
        h.u64(u64::from(self.mesh.is_torus()));
        h.u64(match self.routing {
            RoutingAlgo::DimensionOrdered => 0,
            RoutingAlgo::WestFirstAdaptive => 1,
            RoutingAlgo::NegativeFirstAdaptive => 2,
        });
        match self.router {
            RouterKind::Wormhole { buffers } => {
                h.u64(1);
                h.u64(buffers as u64);
            }
            RouterKind::VirtualCutThrough { buffers } => {
                h.u64(2);
                h.u64(buffers as u64);
            }
            RouterKind::VirtualChannel {
                vcs,
                buffers_per_vc,
            } => {
                h.u64(3);
                h.u64(vcs as u64);
                h.u64(buffers_per_vc as u64);
            }
            RouterKind::SpeculativeVc {
                vcs,
                buffers_per_vc,
            } => {
                h.u64(4);
                h.u64(vcs as u64);
                h.u64(buffers_per_vc as u64);
            }
        }
        h.u64(u64::from(self.single_cycle));
        h.u64(self.link_delay);
        h.u64(self.credit_prop_delay);
        h.u64(self.credit_proc_delay);
        h.u64(u64::from(self.packet_len));
        match self.pattern {
            TrafficPattern::Uniform => h.u64(1),
            TrafficPattern::Transpose => h.u64(2),
            TrafficPattern::BitComplement => h.u64(3),
            TrafficPattern::Tornado => h.u64(4),
            TrafficPattern::NearestNeighbor => h.u64(5),
            TrafficPattern::Hotspot { hotspot, hotness } => {
                h.u64(6);
                h.u64(hotspot as u64);
                h.f64(hotness);
            }
        }
        h.u64(self.warmup_cycles);
        h.u64(self.sample_packets);
        h.u64(self.max_cycles);
        // Folded only when present, so every pre-fault hash — and any
        // record produced by one — stays valid: a healthy config keeps
        // hashing to exactly what it always did. A degraded network is
        // a different experiment, so dedup-resume must never conflate
        // it with a healthy run of the same knobs.
        if !self.faults.is_empty() {
            h.u64(0xFA17); // domain tag for the fault block
            h.u64(self.faults.len() as u64);
            for f in &self.faults {
                match f.target {
                    FaultTarget::Link { node, port } => {
                        h.u64(1);
                        h.u64(node as u64);
                        h.u64(port as u64);
                    }
                    FaultTarget::Router { node } => {
                        h.u64(2);
                        h.u64(node as u64);
                    }
                }
                match f.kind {
                    FaultKind::Dead { at } => {
                        h.u64(1);
                        h.u64(at);
                    }
                    FaultKind::Flaky {
                        period,
                        down,
                        phase,
                    } => {
                        h.u64(2);
                        h.u64(u64::from(period));
                        h.u64(u64::from(down));
                        h.u64(u64::from(phase));
                    }
                    FaultKind::Lossy { prob } => {
                        h.u64(3);
                        h.f64(prob);
                    }
                }
            }
        }
        h.0
    }
}

/// Runs one `(config, seed, load)` point as a full [`Network::run`],
/// producing the incremental record a [`runqueue::ResultSink`] streams.
///
/// The point's configuration is the job's with the load and seed
/// applied — exactly what [`crate::sweep::sweep_parallel`] runs for the
/// same load, so a one-rep job reproduces a sweep bit for bit. A run
/// whose cancellation token fires mid-flight yields `None`: partial
/// measurements are never recorded, which is what makes an interrupted
/// batch resumable by key dedup alone.
#[derive(Debug, Clone, Copy, Default)]
pub struct NetworkRunner;

impl PointRunner<NetworkConfig> for NetworkRunner {
    fn run_point(
        &self,
        config: &NetworkConfig,
        seed: u64,
        load: f64,
        cancel: &CancelToken,
    ) -> Option<PointRecord> {
        let cfg = config
            .clone()
            .with_injection(load)
            .with_seed(seed)
            // Telemetry observes without perturbing (it is excluded from
            // the config hash for the same reason), so every batch point
            // carries flow percentiles and per-node drop attribution.
            .with_telemetry(1024)
            .with_cancel(cancel.clone());
        let r = Network::new(cfg).run();
        if r.cancelled {
            return None;
        }
        let cycles = r.cycles;
        let pct = r.histogram.percentiles();
        let unreachable_pairs = r.unreachable_pairs;
        let flows = r.flow_stats.as_ref().map_or(0, |f| f.flows());
        let worst = r.flow_stats.as_ref().and_then(|f| f.worst());
        // Only nodes that dropped something land in the record; node
        // order (ascending) keys the entries stably across engines.
        let node_drops = r
            .node_drops
            .iter()
            .enumerate()
            .filter(|(_, d)| d.total_flits() > 0 || d.total_packets() > 0)
            .map(|(node, d)| NodeDrops {
                node: node as u32,
                flits: d.flits.to_vec(),
                packets: d.packets.to_vec(),
            })
            .collect();
        // LoadPoint owns the saturation semantics (undelivered sample or
        // collapsed throughput); reuse it so `runq` and `sweep` can never
        // disagree on what "saturated" means.
        let point = LoadPoint::from(r);
        Some(PointRecord {
            key: PointKey::new(config.config_hash(), seed, load),
            job: String::new(),
            seed,
            load,
            latency: point.latency,
            accepted: point.accepted,
            saturated: point.saturated,
            cycles,
            p50: pct.p50,
            p95: pct.p95,
            p99: pct.p99,
            unreachable_pairs,
            node_drops,
            flows,
            flow_p50: worst.map(|(_, _, p)| p.p50),
            flow_p95: worst.map(|(_, _, p)| p.p95),
            flow_p99: worst.map(|(_, _, p)| p.p99),
        })
    }
}

impl From<&PointRecord> for LoadPoint {
    /// A record carries a [`LoadPoint`]'s fields verbatim, so consumers
    /// that plot curves (the `repro-*` binaries) rebuild them losslessly.
    fn from(r: &PointRecord) -> Self {
        LoadPoint {
            offered: r.load,
            latency: r.latency,
            accepted: r.accepted,
            saturated: r.saturated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineKind;

    fn base() -> NetworkConfig {
        NetworkConfig::mesh(
            4,
            RouterKind::SpeculativeVc {
                vcs: 2,
                buffers_per_vc: 4,
            },
        )
        .with_warmup(100)
        .with_sample(150)
        .with_max_cycles(8_000)
    }

    #[test]
    fn hash_is_stable_across_result_neutral_knobs() {
        let h = base().config_hash();
        assert_eq!(h, base().config_hash(), "deterministic");
        assert_eq!(
            h,
            base().with_engine(EngineKind::parallel(4)).config_hash(),
            "engines produce identical results, so the hash ignores them"
        );
        assert_eq!(h, base().with_seed(99).config_hash(), "seed is in the key");
        assert_eq!(
            h,
            base().with_injection(0.7).config_hash(),
            "load is in the key"
        );
        assert_eq!(h, base().with_phase_timing(true).config_hash());
        assert_eq!(
            h,
            base().with_telemetry(4096).config_hash(),
            "snapshots observe the run without perturbing it"
        );
        assert_eq!(
            h,
            base().with_rebalance(64, 1.2).config_hash(),
            "rebalancing never changes results, so the hash ignores it"
        );
        assert_eq!(h, base().with_cancel(CancelToken::new()).config_hash());
    }

    #[test]
    fn hash_separates_result_relevant_knobs() {
        let h = base().config_hash();
        assert_ne!(h, base().with_warmup(200).config_hash());
        assert_ne!(h, base().with_sample(100).config_hash());
        assert_ne!(h, base().with_max_cycles(9_000).config_hash());
        assert_ne!(h, base().with_single_cycle(true).config_hash());
        assert_ne!(h, base().with_credit_prop_delay(4).config_hash());
        assert_ne!(
            h,
            base().with_pattern(TrafficPattern::Transpose).config_hash()
        );
        assert_ne!(
            h,
            NetworkConfig::mesh(4, RouterKind::Wormhole { buffers: 8 })
                .with_warmup(100)
                .with_sample(150)
                .with_max_cycles(8_000)
                .config_hash()
        );
        // VC vs specVC with identical parameters must differ (tagged).
        let vc = NetworkConfig::mesh(
            4,
            RouterKind::VirtualChannel {
                vcs: 2,
                buffers_per_vc: 4,
            },
        )
        .with_warmup(100)
        .with_sample(150)
        .with_max_cycles(8_000);
        assert_ne!(h, vc.config_hash());
        // Faults change results, so every distinct plan hashes apart —
        // from healthy, and from each other (kind and parameters).
        let faulted = |s: &str| {
            base()
                .with_faults(crate::config::parse_faults(s).expect("test spec"))
                .config_hash()
        };
        let dead = faulted("link:5:0:dead@100");
        assert_ne!(h, dead, "a degraded run is a different experiment");
        assert_ne!(dead, faulted("link:5:0:dead@200"));
        assert_ne!(dead, faulted("link:5:1:dead@100"));
        assert_ne!(dead, faulted("router:5:dead@100"));
        assert_ne!(dead, faulted("link:5:0:flaky@40/10"));
        assert_ne!(dead, faulted("link:5:0:loss@0.1"));
        assert_eq!(
            h,
            base().with_faults(vec![]).config_hash(),
            "an empty plan is the healthy hash"
        );
    }

    #[test]
    fn runner_reproduces_a_direct_run_bit_for_bit() {
        let cfg = base();
        let rec = NetworkRunner
            .run_point(&cfg, cfg.seed, 0.3, &CancelToken::new())
            .expect("not cancelled");
        let direct = Network::new(cfg.clone().with_injection(0.3)).run();
        assert_eq!(
            rec.latency.map(f64::to_bits),
            direct.avg_latency.map(f64::to_bits)
        );
        assert_eq!(rec.cycles, direct.cycles);
        assert_eq!(rec.p50, direct.histogram.percentiles().p50);
        let point = LoadPoint::from(direct);
        assert_eq!(rec.accepted.to_bits(), point.accepted.to_bits());
        assert_eq!(rec.saturated, point.saturated);
        // The runner switches telemetry on; the direct run above ran
        // with it off — bit-equal results are the neutrality proof.
        assert!(rec.flows > 0, "tagged flows were attributed");
        assert!(rec.flow_p99.expect("flows measured") > 0);
        assert!(rec.node_drops.is_empty(), "healthy run drops nothing");
    }

    #[test]
    fn pre_cancelled_runner_returns_none() {
        let token = CancelToken::new();
        token.cancel();
        assert!(NetworkRunner.run_point(&base(), 1, 0.3, &token).is_none());
    }
}
