//! k-ary n-mesh interconnection-network simulator for the Peh–Dally
//! HPCA 2001 reproduction.
//!
//! Wires `router-core` routers into a mesh (or torus) with 1-cycle links
//! and a configurable-latency credit return path, drives them with
//! constant-rate traffic sources, and measures latency–throughput curves
//! using the paper's protocol: a warm-up phase, then a tagged sample of
//! packets whose average latency — from creation at the source (including
//! source queueing) to ejection of the tail at the destination — is
//! reported.
//!
//! # Example
//!
//! ```
//! use noc_network::{NetworkConfig, Network, RouterKind};
//!
//! // A small 4x4 mesh of speculative VC routers at 20% capacity.
//! let cfg = NetworkConfig::mesh(4, RouterKind::SpeculativeVc { vcs: 2, buffers_per_vc: 4 })
//!     .with_injection(0.2)
//!     .with_warmup(200)
//!     .with_sample(200)
//!     .with_max_cycles(20_000);
//! let result = Network::new(cfg).run();
//! assert!(!result.saturated);
//! assert!(result.avg_latency.unwrap() > 10.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel_load;
pub mod config;
pub mod fault;
pub mod histogram;
pub mod orchestrate;
pub mod routing;
pub mod shard;
pub mod sim;
pub mod source;
pub mod stats;
pub mod sweep;
pub(crate) mod tap;
pub mod topology;
pub mod traffic;

pub use channel_load::ChannelLoad;
pub use config::{
    parse_faults, BarrierKind, ConfigError, FaultKind, FaultSpec, FaultTarget, NetworkConfig,
    RebalanceConfig, RouterKind, RoutingAlgo, TelemetryConfig,
};
pub use fault::{DropReason, DropStats, FaultModel};
pub use histogram::{Histogram, Percentiles};
pub use orchestrate::NetworkRunner;
pub use routing::RouteTable;
// Batches cancel through the same token type the simulator polls.
pub use runqueue::CancelToken;
pub use sim::{Network, RunResult, CANCEL_BATCH};
pub use stats::{LatencyStats, PhaseNanos};
// The observability vocabulary the engines speak, re-exported so
// downstream crates need no direct `telemetry` dependency.
pub use sweep::{sweep, sweep_parallel, LoadPoint, SweepOptions};
pub use telemetry::{
    FlowPercentiles, FlowStats, JsonlTap, MemoryTap, MetricsLog, MetricsTap, TraceLog,
};
pub use topology::{Mesh, LOCAL_PORT};
pub use traffic::TrafficPattern;
