//! End-to-end tests of the future-work extensions: torus topology with
//! dateline VC deadlock avoidance, and west-first adaptive routing.

use noc_network::config::{ConfigError, RoutingAlgo};
use noc_network::{Network, NetworkConfig, RouterKind, TrafficPattern};

fn run(cfg: NetworkConfig) -> noc_network::RunResult {
    Network::new(cfg).run()
}

#[test]
fn torus_uniform_traffic_drains() {
    for kind in [
        RouterKind::VirtualChannel {
            vcs: 2,
            buffers_per_vc: 4,
        },
        RouterKind::SpeculativeVc {
            vcs: 2,
            buffers_per_vc: 4,
        },
        RouterKind::SpeculativeVc {
            vcs: 4,
            buffers_per_vc: 2,
        },
    ] {
        let cfg = NetworkConfig::mesh(8, kind)
            .into_torus()
            .with_injection(0.2)
            .with_warmup(500)
            .with_sample(800)
            .with_max_cycles(100_000);
        let r = run(cfg);
        assert!(!r.saturated, "{kind} saturated on torus at 20% load");
        assert_eq!(r.stats.count(), 800, "{kind}");
    }
}

/// Tornado traffic on a torus sends every packet halfway around its
/// rings — the classic stress for ring deadlock. The dateline classes
/// must keep it live.
#[test]
fn torus_tornado_does_not_deadlock() {
    // Tornado sends every packet k/2 hops around its rings and the
    // dateline classes leave a single usable VC per class on each
    // channel, so feasible load is low; well below it the sample must
    // drain...
    let cfg = NetworkConfig::mesh(
        8,
        RouterKind::SpeculativeVc {
            vcs: 2,
            buffers_per_vc: 4,
        },
    )
    .into_torus()
    .with_pattern(TrafficPattern::Tornado)
    .with_injection(0.05)
    .with_warmup(500)
    .with_sample(600)
    .with_max_cycles(150_000);
    let r = run(cfg);
    assert!(!r.saturated, "tornado on torus deadlocked or saturated");
    assert_eq!(r.stats.count(), 600);

    // ...and even past saturation the network must stay *live* (packets
    // keep draining — saturation, not deadlock).
    let hot = NetworkConfig::mesh(
        8,
        RouterKind::SpeculativeVc {
            vcs: 2,
            buffers_per_vc: 4,
        },
    )
    .into_torus()
    .with_pattern(TrafficPattern::Tornado)
    .with_injection(0.5)
    .with_warmup(500)
    .with_sample(20_000)
    .with_max_cycles(30_000);
    let r = run(hot);
    assert!(
        r.flits_ejected > 10_000,
        "throughput collapsed to {} flits — ring deadlock?",
        r.flits_ejected
    );
}

/// Wrap links shorten paths: the torus must beat the mesh at zero load.
#[test]
fn torus_cuts_zero_load_latency() {
    let kind = RouterKind::SpeculativeVc {
        vcs: 2,
        buffers_per_vc: 4,
    };
    let base = |cfg: NetworkConfig| {
        cfg.with_injection(0.05)
            .with_warmup(400)
            .with_sample(500)
            .with_max_cycles(80_000)
    };
    let mesh = run(base(NetworkConfig::mesh(8, kind)));
    let torus = run(base(NetworkConfig::mesh(8, kind).into_torus()));
    let (m, t) = (mesh.avg_latency.unwrap(), torus.avg_latency.unwrap());
    // Average distance drops from ~5.33 to 4 — about 4 router+link hops.
    assert!(
        t < m - 2.0,
        "torus ({t:.1}) must beat mesh ({m:.1}) at zero load"
    );
}

#[test]
fn west_first_adaptive_delivers_uniform_traffic() {
    let cfg = NetworkConfig::mesh(
        8,
        RouterKind::SpeculativeVc {
            vcs: 2,
            buffers_per_vc: 4,
        },
    )
    .with_routing(RoutingAlgo::WestFirstAdaptive)
    .with_injection(0.25)
    .with_warmup(500)
    .with_sample(800)
    .with_max_cycles(100_000);
    let r = run(cfg);
    assert!(!r.saturated);
    assert_eq!(r.stats.count(), 800);
}

#[test]
fn negative_first_adaptive_delivers_on_two_and_three_d_meshes() {
    let kind = RouterKind::SpeculativeVc {
        vcs: 2,
        buffers_per_vc: 4,
    };
    for mesh in [noc_network::Mesh::new(8, 2), noc_network::Mesh::new(4, 3)] {
        let cfg = NetworkConfig::for_mesh(mesh, kind)
            .with_routing(RoutingAlgo::NegativeFirstAdaptive)
            .with_injection(0.25)
            .with_warmup(500)
            .with_sample(800)
            .with_max_cycles(100_000);
        let r = run(cfg);
        assert!(!r.saturated, "{mesh} saturated at 25% load");
        assert_eq!(r.stats.count(), 800, "{mesh}");
    }
}

/// Minimal adaptivity on a 3-D mesh: zero-load latency matches DOR
/// (both route minimally; only the path spread differs).
#[test]
fn negative_first_zero_load_matches_dor_in_three_dims() {
    let kind = RouterKind::VirtualChannel {
        vcs: 2,
        buffers_per_vc: 4,
    };
    let base = |algo| {
        NetworkConfig::for_mesh(noc_network::Mesh::new(4, 3), kind)
            .with_routing(algo)
            .with_injection(0.05)
            .with_warmup(400)
            .with_sample(500)
            .with_max_cycles(80_000)
    };
    let dor = run(base(RoutingAlgo::DimensionOrdered))
        .avg_latency
        .unwrap();
    let nf = run(base(RoutingAlgo::NegativeFirstAdaptive))
        .avg_latency
        .unwrap();
    assert!(
        (dor - nf).abs() < 2.0,
        "minimal routes must give matching zero-load latency: {dor:.1} vs {nf:.1}"
    );
}

/// Adaptive selection keeps paths minimal: zero-load latency matches DOR.
#[test]
fn west_first_zero_load_matches_dor() {
    let kind = RouterKind::VirtualChannel {
        vcs: 2,
        buffers_per_vc: 4,
    };
    let base = |algo| {
        NetworkConfig::mesh(8, kind)
            .with_routing(algo)
            .with_injection(0.05)
            .with_warmup(400)
            .with_sample(500)
            .with_max_cycles(80_000)
    };
    let dor = run(base(RoutingAlgo::DimensionOrdered))
        .avg_latency
        .unwrap();
    let wf = run(base(RoutingAlgo::WestFirstAdaptive))
        .avg_latency
        .unwrap();
    assert!(
        (dor - wf).abs() < 2.0,
        "minimal routes must give matching zero-load latency: {dor:.1} vs {wf:.1}"
    );
}

#[test]
fn virtual_cut_through_delivers_and_matches_wormhole_latency() {
    // VCT has the same 3-stage pipeline as wormhole; at low load with
    // ample buffering their latencies match.
    let base = |kind| {
        NetworkConfig::mesh(8, kind)
            .with_injection(0.05)
            .with_warmup(400)
            .with_sample(500)
            .with_max_cycles(80_000)
    };
    let wh = run(base(RouterKind::Wormhole { buffers: 8 }));
    let vct = run(base(RouterKind::VirtualCutThrough { buffers: 8 }));
    assert!(!vct.saturated);
    let (a, b) = (wh.avg_latency.unwrap(), vct.avg_latency.unwrap());
    assert!(
        (a - b).abs() < 1.5,
        "same pipeline at zero load: WH {a:.1} vs VCT {b:.1}"
    );
}

#[test]
fn cut_through_admission_needs_multi_packet_buffers() {
    // Whole-packet admission idles the channel while credits drain back
    // above a packet's worth: with barely 1.6 packets of buffering VCT
    // pays heavily at load, while with 3+ packets it tracks wormhole —
    // the classical guidance that VCT wants packet-granular buffering.
    let base = |kind| {
        NetworkConfig::mesh(8, kind)
            .with_injection(0.35)
            .with_warmup(800)
            .with_sample(1_500)
            .with_max_cycles(150_000)
    };
    let wh = run(base(RouterKind::Wormhole { buffers: 16 }));
    let deep = run(base(RouterKind::VirtualCutThrough { buffers: 16 }));
    let shallow = run(base(RouterKind::VirtualCutThrough { buffers: 8 }));
    assert!(!wh.saturated && !deep.saturated);
    let (a, b) = (wh.avg_latency.unwrap(), deep.avg_latency.unwrap());
    assert!(
        b < a * 1.3,
        "deep-buffered VCT tracks wormhole: WH {a:.1} vs VCT {b:.1}"
    );
    let c = shallow.avg_latency.unwrap_or(f64::INFINITY);
    assert!(
        c > b,
        "shallow buffers must cost VCT latency: {b:.1} vs {c:.1}"
    );
}

/// The paper's p = 7 configurations are 3-D mesh routers; the simulator
/// handles them end to end (4-ary 3-mesh, 7-port routers).
#[test]
fn three_dimensional_mesh_works() {
    let mut cfg = NetworkConfig::mesh(
        4,
        RouterKind::SpeculativeVc {
            vcs: 2,
            buffers_per_vc: 4,
        },
    )
    .with_injection(0.15)
    .with_warmup(300)
    .with_sample(400)
    .with_max_cycles(80_000);
    cfg.mesh = noc_network::Mesh::new(4, 3);
    let r = run(cfg);
    assert!(!r.saturated);
    assert_eq!(r.stats.count(), 400);
    // 64 nodes, avg distance ~3.8: latency in the high 20s.
    let lat = r.avg_latency.unwrap();
    assert!((20.0..40.0).contains(&lat), "3-D mesh latency {lat}");
}

/// A 3-D torus with dateline classes is likewise live.
#[test]
fn three_dimensional_torus_works() {
    let mut cfg = NetworkConfig::mesh(
        4,
        RouterKind::VirtualChannel {
            vcs: 2,
            buffers_per_vc: 4,
        },
    )
    .with_injection(0.1)
    .with_warmup(300)
    .with_sample(300)
    .with_max_cycles(80_000);
    cfg.mesh = noc_network::Mesh::new(4, 3).into_torus();
    let r = run(cfg);
    assert!(!r.saturated);
    assert_eq!(r.stats.count(), 300);
}

#[test]
fn torus_with_one_vc_is_rejected() {
    let cfg = NetworkConfig::mesh(
        4,
        RouterKind::VirtualChannel {
            vcs: 1,
            buffers_per_vc: 4,
        },
    )
    .into_torus();
    let err = Network::try_new(cfg).unwrap_err();
    assert_eq!(err, ConfigError::TorusNeedsDatelineVcs { vcs: 1 });
    assert!(err.to_string().contains("dateline"), "{err}");
}

#[test]
fn west_first_on_torus_is_rejected() {
    let kind = RouterKind::VirtualChannel {
        vcs: 2,
        buffers_per_vc: 4,
    };
    let cfg = NetworkConfig::mesh(4, kind)
        .into_torus()
        .with_routing(RoutingAlgo::WestFirstAdaptive);
    let err = Network::try_new(cfg).unwrap_err();
    assert_eq!(
        err,
        ConfigError::WestFirstNeedsTwoDimMesh {
            dims: 2,
            torus: true
        }
    );
    assert!(err.to_string().contains("2-D meshes"), "{err}");
}

#[test]
#[should_panic(expected = "invalid network configuration")]
fn infallible_constructor_panics_with_the_config_error_message() {
    let kind = RouterKind::Wormhole { buffers: 8 };
    let _ = Network::new(NetworkConfig::mesh(4, kind).into_torus());
}
