//! Proof that the sharded-parallel engine's steady state is
//! allocation-free: mailbox exchange, per-shard wheels, source stepping,
//! and the serial measurement commit (tagging, latency, histogram,
//! channel load) must all run out of retained buffers once capacities
//! plateau.
//!
//! The network is driven through the *inline* sharded step path — the
//! same phase functions and mailbox exchange the threaded run executes,
//! minus the thread pool — because a counting global allocator needs
//! single-threaded windows to attribute allocations deterministically.
//! (This is its own integration-test binary because a
//! `#[global_allocator]` is per-binary.)

use noc_network::config::EngineKind;
use noc_network::{Network, NetworkConfig, RouterKind};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Steps `net` for `cycles` and returns the allocations performed.
fn alloc_window(net: &mut Network, cycles: u64) -> u64 {
    let before = allocations();
    for _ in 0..cycles {
        net.step();
    }
    allocations() - before
}

/// One serial test (the counter is process-global) covering two shard
/// counts, including one that does not divide the node count, at a load
/// where packets are created, forwarded across shard boundaries, tagged,
/// and ejected continuously — so every mailbox and commit path is hot.
#[test]
fn sharded_steady_state_is_allocation_free() {
    for shards in [2, 3] {
        run_alloc_free_check(
            NetworkConfig::mesh(
                4,
                RouterKind::SpeculativeVc {
                    vcs: 2,
                    buffers_per_vc: 4,
                },
            ),
            shards,
        );
    }
    // A 3-D mesh of 7-port routers: the generalized topology stack must
    // preserve the zero-steady-state-allocation guarantee end to end
    // (route table, mailboxes sized from mesh.ports(), commit paths).
    run_alloc_free_check(
        NetworkConfig::for_mesh(
            noc_network::Mesh::new(3, 3),
            RouterKind::SpeculativeVc {
                vcs: 2,
                buffers_per_vc: 4,
            },
        ),
        3,
    );
}

/// The fused compute path at near-quiescent load: most cycles deliver
/// nothing, inject nothing, and tick no routers, so the per-cycle cost
/// is mailbox checks, wheel cursor moves, and vote bookkeeping — all of
/// which must run out of retained buffers too. (The inline step path
/// never fast-forwards, so every one of these idle cycles actually
/// executes the fused phases.)
#[test]
fn sharded_quiescent_cycles_are_allocation_free() {
    let cfg = NetworkConfig::mesh(
        4,
        RouterKind::VirtualChannel {
            vcs: 2,
            buffers_per_vc: 4,
        },
    )
    .with_injection(0.02)
    .with_warmup(100)
    .with_sample(u64::MAX)
    .with_max_cycles(u64::MAX)
    .with_engine(EngineKind::ParallelShards { shards: 3 });
    let mut net = Network::new(cfg);
    let _ = alloc_window(&mut net, 1_500);
    let mut min_window = u64::MAX;
    for _ in 0..5 {
        min_window = min_window.min(alloc_window(&mut net, 1_000));
    }
    assert_eq!(
        min_window, 0,
        "every quiescent steady-state window allocated \
         (min {min_window} per 1000 cycles)"
    );
    net.assert_flit_conservation();
}

/// Work-metered rebalancing must not break the steady-state guarantee:
/// the meters fold into retained EWMAs, the epoch decision reuses the
/// prefix/range scratch, and a firing *migration* drains wheels,
/// mailboxes, and seam credit pipes into buffers preallocated at
/// construction — so the step that performs a live migration allocates
/// nothing, and neither do the epoch-metering windows after it.
///
/// The epoch is placed past the capacity-plateau warmup and the skewed
/// hotspot keeps imbalance above the threshold, so the drive provably
/// migrates. After the migration the moved rows' *new* owners grow their
/// wheel slots and pipes to the traffic once (ordinary capacity warmup),
/// which a regrow window absorbs before the measured ones. The scenario
/// is retried because the allocation counter is process-global (another
/// harness thread may allocate during the single migration step); an
/// allocating migration path would fail every attempt.
#[test]
fn sharded_rebalance_migration_is_allocation_free() {
    let attempts = 3;
    let mut best_migration = u64::MAX;
    let mut best_window = u64::MAX;
    for _ in 0..attempts {
        let cfg = NetworkConfig::mesh(
            4,
            RouterKind::SpeculativeVc {
                vcs: 2,
                buffers_per_vc: 4,
            },
        )
        .with_pattern(noc_network::TrafficPattern::Hotspot {
            hotspot: 5,
            hotness: 0.6,
        })
        // Keep the hotspot below its ejection limit (16 * 0.06 * 0.6 ≈
        // 0.58 flits/cycle): a saturated hotspot grows queueing latency
        // without bound, and with it the latency histogram — which would
        // read as a (real, but unrelated) allocating steady state.
        .with_injection(0.06)
        .with_warmup(100)
        .with_sample(u64::MAX)
        .with_max_cycles(u64::MAX)
        .with_engine(EngineKind::ParallelShards { shards: 3 })
        .with_rebalance(2_000, 1.05);
        let mut net = Network::new(cfg);
        // Past every capacity plateau, short of the first epoch decision
        // at executed cycle 2000.
        let _ = alloc_window(&mut net, 1_900);
        // Walk up to the migration and meter exactly the step that
        // performs it (drain + re-cut + re-home).
        let before_rb = net.rebalances();
        let mut migration = None;
        for _ in 0..1_000 {
            let step = alloc_window(&mut net, 1);
            if net.rebalances() > before_rb {
                migration = Some(step);
                break;
            }
        }
        best_migration =
            best_migration.min(migration.expect("skewed load must trigger a migration"));
        // Let the new owners regrow to the traffic, then require the
        // epoch-metering steady state to be allocation-free again.
        let _ = alloc_window(&mut net, 1_000);
        for _ in 0..5 {
            best_window = best_window.min(alloc_window(&mut net, 1_000));
        }
        net.assert_flit_conservation();
        if best_migration == 0 && best_window == 0 {
            break;
        }
    }
    assert_eq!(
        best_migration, 0,
        "the migration step allocated (best {best_migration} over {attempts} attempts)"
    );
    assert_eq!(
        best_window, 0,
        "every post-migration metering window allocated \
         (best {best_window} per 1000 cycles)"
    );
}

/// Telemetry must not break the steady-state guarantee: counter updates
/// are integer adds into slots preallocated at construction, flow
/// recording is three array stores into a fixed-size accumulator, and
/// each epoch emission appends fixed-width rows to the in-memory log —
/// whose *amortized* (geometric) growth the min-over-windows discipline
/// absorbs. An allocating per-cycle, per-flit, or per-snapshot path
/// would show up in every window.
#[test]
fn telemetry_instrumented_steady_state_is_allocation_free() {
    let cfg = NetworkConfig::mesh(
        4,
        RouterKind::SpeculativeVc {
            vcs: 2,
            buffers_per_vc: 4,
        },
    )
    .with_injection(0.25)
    .with_warmup(100)
    .with_sample(u64::MAX)
    .with_max_cycles(u64::MAX)
    .with_telemetry(256)
    .with_engine(EngineKind::ParallelShards { shards: 3 });
    let mut net = Network::new(cfg);
    let _ = alloc_window(&mut net, 1_500);
    let mut min_window = u64::MAX;
    for _ in 0..5 {
        min_window = min_window.min(alloc_window(&mut net, 1_000));
    }
    assert_eq!(
        min_window, 0,
        "telemetry-on steady-state window allocated \
         (min {min_window} per 1000 cycles)"
    );
    net.assert_flit_conservation();
}

fn run_alloc_free_check(base: NetworkConfig, shards: usize) {
    let cfg = base
        .with_injection(0.25)
        .with_warmup(100)
        // Never-completing sample: tagging stays active through every
        // measured window.
        .with_sample(u64::MAX)
        .with_max_cycles(u64::MAX)
        .with_engine(EngineKind::ParallelShards { shards });
    let mut net = Network::new(cfg);

    // Warm-up: let every retained buffer — mailboxes, wheels, shard
    // records, scratch, source queues — reach its high-water mark.
    let _ = alloc_window(&mut net, 1_500);

    // Take the minimum over several windows: the counter is global,
    // so a libtest harness thread may allocate once somewhere, but an
    // allocating engine path would show up in every window.
    let mut min_window = u64::MAX;
    for _ in 0..5 {
        min_window = min_window.min(alloc_window(&mut net, 1_000));
    }
    assert_eq!(
        min_window, 0,
        "shards={shards}: every steady-state window allocated \
             (min {min_window} per 1000 cycles)"
    );
    assert!(
        net.flits_ejected() > 1_000,
        "shards={shards}: the drive must actually move traffic \
             ({} ejected)",
        net.flits_ejected()
    );
    net.assert_flit_conservation();
}
