//! The precomputed [`RouteTable`] must agree with the definitional
//! routing functions on every `(node, dest)` pair — the hot path may
//! only be *faster* than calling them per flit, never different. The
//! table's dimension-generic encoding (per-node coordinates + shared
//! k×k ring tables + sign-code candidate sets) makes this a real
//! theorem, checked here both on fixed grids and property-style over
//! random `(radix, dims)` shapes.

use noc_network::config::RoutingAlgo;
use noc_network::routing::{
    dateline_vc_mask, dimension_ordered, negative_first_candidates, negative_first_route,
    west_first_candidates, west_first_route, RouteTable,
};
use noc_network::Mesh;
use proptest::prelude::*;

#[test]
fn dor_table_matches_function_on_mesh_and_torus() {
    for (mesh, vcs) in [
        (Mesh::new(4, 2), 1),
        (Mesh::new(8, 2), 2),
        (Mesh::new(3, 3), 4),
        (Mesh::new(4, 2).into_torus(), 2),
        (Mesh::new(8, 2).into_torus(), 4),
    ] {
        let table = RouteTable::new(&mesh, RoutingAlgo::DimensionOrdered, vcs);
        for node in 0..mesh.nodes() {
            for dest in 0..mesh.nodes() {
                let port = dimension_ordered(&mesh, node, dest);
                // Deterministic routing ignores the selector.
                for selector in [0u64, 1, 0xDEAD_BEEF] {
                    assert_eq!(
                        table.route(node, dest, selector),
                        port,
                        "{mesh} node {node} dest {dest}"
                    );
                }
                assert_eq!(
                    table.vc_mask(node, dest),
                    dateline_vc_mask(&mesh, node, port, dest, vcs),
                    "{mesh} node {node} dest {dest} mask"
                );
            }
        }
    }
}

#[test]
fn adaptive_table_matches_west_first_for_every_selector_class() {
    let mesh = Mesh::new(6, 2);
    let table = RouteTable::new(&mesh, RoutingAlgo::WestFirstAdaptive, 2);
    for node in 0..mesh.nodes() {
        for dest in 0..mesh.nodes() {
            let cands = west_first_candidates(&mesh, node, dest);
            // Selector choice is modulo the candidate count; cover both
            // residues plus large values.
            for selector in [0u64, 1, 2, 3, u64::MAX - 1, u64::MAX] {
                assert_eq!(
                    table.route(node, dest, selector),
                    west_first_route(&mesh, node, dest, selector),
                    "node {node} dest {dest} selector {selector} (cands {cands:?})"
                );
            }
            // West-first is mesh-only: every VC is permitted.
            assert_eq!(table.vc_mask(node, dest), 0b11);
        }
    }
}

#[test]
fn adaptive_table_matches_negative_first_in_three_dims() {
    for mesh in [Mesh::new(3, 3), Mesh::new(4, 3), Mesh::new(5, 1)] {
        let table = RouteTable::new(&mesh, RoutingAlgo::NegativeFirstAdaptive, 2);
        for node in 0..mesh.nodes() {
            for dest in 0..mesh.nodes() {
                let cands = negative_first_candidates(&mesh, node, dest);
                for selector in [0u64, 1, 2, 3, 4, u64::MAX] {
                    assert_eq!(
                        table.route(node, dest, selector),
                        negative_first_route(&mesh, node, dest, selector),
                        "{mesh} node {node} dest {dest} selector {selector} (cands {cands:?})"
                    );
                }
                assert_eq!(table.vc_mask(node, dest), 0b11, "mesh masks are full");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The generalized table agrees with the definitional DOR function
    /// entry by entry over random `(radix, dims, torus, vcs)` shapes —
    /// the satellite guarantee that no shape-specific encoding bug hides
    /// between the fixed grids above.
    #[test]
    fn dor_table_matches_function_over_random_shapes(
        radix in 2usize..10,
        dims in 1usize..4,
        torus in any::<bool>(),
        vcs in 2usize..5,
    ) {
        let mut mesh = Mesh::new(radix, dims);
        if torus {
            mesh = mesh.into_torus();
        }
        let table = RouteTable::new(&mesh, RoutingAlgo::DimensionOrdered, vcs);
        for node in 0..mesh.nodes() {
            for dest in 0..mesh.nodes() {
                let port = dimension_ordered(&mesh, node, dest);
                prop_assert_eq!(
                    table.route(node, dest, 7),
                    port,
                    "{} node {} dest {}", mesh, node, dest
                );
                prop_assert_eq!(
                    table.vc_mask(node, dest),
                    dateline_vc_mask(&mesh, node, port, dest, vcs),
                    "{} node {} dest {} mask", mesh, node, dest
                );
            }
        }
    }

    /// Same entry-by-entry agreement for the adaptive turn models over
    /// random mesh shapes (west-first where defined, negative-first
    /// everywhere), across selector residues.
    #[test]
    fn adaptive_tables_match_functions_over_random_shapes(
        radix in 2usize..8,
        dims in 1usize..4,
        selector in any::<u64>(),
    ) {
        let mesh = Mesh::new(radix, dims);
        let nf = RouteTable::new(&mesh, RoutingAlgo::NegativeFirstAdaptive, 2);
        let wf = (dims == 2).then(|| RouteTable::new(&mesh, RoutingAlgo::WestFirstAdaptive, 2));
        for node in 0..mesh.nodes() {
            for dest in 0..mesh.nodes() {
                prop_assert_eq!(
                    nf.route(node, dest, selector),
                    negative_first_route(&mesh, node, dest, selector),
                    "negative-first {} node {} dest {}", mesh, node, dest
                );
                if let Some(wf) = &wf {
                    prop_assert_eq!(
                        wf.route(node, dest, selector),
                        west_first_route(&mesh, node, dest, selector),
                        "west-first {} node {} dest {}", mesh, node, dest
                    );
                }
            }
        }
    }
}

#[test]
fn table_masks_never_empty() {
    // An all-zero mask would deadlock the router at RC; every entry must
    // permit at least one VC.
    for mesh in [Mesh::new(5, 2), Mesh::new(5, 2).into_torus()] {
        let vcs = 3;
        let table = RouteTable::new(&mesh, RoutingAlgo::DimensionOrdered, vcs);
        for node in 0..mesh.nodes() {
            for dest in 0..mesh.nodes() {
                let mask = table.vc_mask(node, dest) & ((1 << vcs) - 1);
                assert_ne!(mask, 0, "{mesh} node {node} dest {dest}");
            }
        }
    }
}
