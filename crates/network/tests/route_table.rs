//! The precomputed [`RouteTable`] must agree with the definitional
//! routing functions on every `(node, dest)` pair — the hot path may
//! only be *faster* than calling them per flit, never different.

use noc_network::config::RoutingAlgo;
use noc_network::routing::{
    dateline_vc_mask, dimension_ordered, west_first_candidates, west_first_route, RouteTable,
};
use noc_network::Mesh;

#[test]
fn dor_table_matches_function_on_mesh_and_torus() {
    for (mesh, vcs) in [
        (Mesh::new(4, 2), 1),
        (Mesh::new(8, 2), 2),
        (Mesh::new(3, 3), 4),
        (Mesh::new(4, 2).into_torus(), 2),
        (Mesh::new(8, 2).into_torus(), 4),
    ] {
        let table = RouteTable::new(&mesh, RoutingAlgo::DimensionOrdered, vcs);
        for node in 0..mesh.nodes() {
            for dest in 0..mesh.nodes() {
                let port = dimension_ordered(&mesh, node, dest);
                // Deterministic routing ignores the selector.
                for selector in [0u64, 1, 0xDEAD_BEEF] {
                    assert_eq!(
                        table.route(node, dest, selector),
                        port,
                        "{mesh} node {node} dest {dest}"
                    );
                }
                assert_eq!(
                    table.vc_mask(node, dest),
                    dateline_vc_mask(&mesh, node, port, dest, vcs),
                    "{mesh} node {node} dest {dest} mask"
                );
            }
        }
    }
}

#[test]
fn adaptive_table_matches_west_first_for_every_selector_class() {
    let mesh = Mesh::new(6, 2);
    let table = RouteTable::new(&mesh, RoutingAlgo::WestFirstAdaptive, 2);
    for node in 0..mesh.nodes() {
        for dest in 0..mesh.nodes() {
            let cands = west_first_candidates(&mesh, node, dest);
            // Selector choice is modulo the candidate count; cover both
            // residues plus large values.
            for selector in [0u64, 1, 2, 3, u64::MAX - 1, u64::MAX] {
                assert_eq!(
                    table.route(node, dest, selector),
                    west_first_route(&mesh, node, dest, selector),
                    "node {node} dest {dest} selector {selector} (cands {cands:?})"
                );
            }
            // West-first is mesh-only: every VC is permitted.
            assert_eq!(table.vc_mask(node, dest), 0b11);
        }
    }
}

#[test]
fn table_masks_never_empty() {
    // An all-zero mask would deadlock the router at RC; every entry must
    // permit at least one VC.
    for mesh in [Mesh::new(5, 2), Mesh::new(5, 2).into_torus()] {
        let vcs = 3;
        let table = RouteTable::new(&mesh, RoutingAlgo::DimensionOrdered, vcs);
        for node in 0..mesh.nodes() {
            for dest in 0..mesh.nodes() {
                let mask = table.vc_mask(node, dest) & ((1 << vcs) - 1);
                assert_ne!(mask, 0, "{mesh} node {node} dest {dest}");
            }
        }
    }
}
