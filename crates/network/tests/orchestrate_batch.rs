//! Batch-level acceptance tests for the `runqueue` integration:
//! cooperative cancellation of a live run, cancel-then-resume equality,
//! and worker-count independence of result records.

use noc_network::config::EngineKind;
use noc_network::{CancelToken, Network, NetworkConfig, NetworkRunner, RouterKind, CANCEL_BATCH};
use runqueue::{run_batch, JobConfig, JobSpec, JsonlSink, MemorySink, PointKey, PointRecord};
use std::collections::HashSet;
use std::path::PathBuf;

fn spec_vc() -> RouterKind {
    RouterKind::SpeculativeVc {
        vcs: 2,
        buffers_per_vc: 4,
    }
}

fn small(load: f64) -> NetworkConfig {
    NetworkConfig::mesh(4, spec_vc())
        .with_injection(load)
        .with_warmup(100)
        .with_sample(150)
        .with_max_cycles(8_000)
}

fn temp_jsonl(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("orchestrate-{tag}-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

#[test]
fn pre_cancelled_run_stops_at_cycle_zero() {
    let token = CancelToken::new();
    token.cancel();
    for engine in [
        EngineKind::CycleDriven,
        EngineKind::EventDriven,
        EngineKind::parallel(2),
    ] {
        let r = Network::new(small(0.3).with_engine(engine).with_cancel(token.clone())).run();
        assert!(r.cancelled, "{engine}");
        assert_eq!(r.cycles, 0, "{engine}");
        assert!(r.saturated, "a cancelled run reads as saturated");
    }
}

#[test]
fn live_cancellation_interrupts_a_saturated_run_at_batch_granularity() {
    // A 200%-load run with an enormous cycle limit would grind for a
    // long time; cancelling from another thread must stop it at a
    // CANCEL_BATCH boundary, far short of the limit.
    for engine in [EngineKind::EventDriven, EngineKind::parallel(2)] {
        let token = CancelToken::new();
        let cfg = NetworkConfig::mesh(4, spec_vc())
            .with_injection(2.0)
            .with_warmup(100)
            .with_sample(1_000_000)
            .with_max_cycles(u64::MAX / 2)
            .with_engine(engine)
            .with_cancel(token.clone());
        let canceller = {
            let token = token.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(50));
                token.cancel();
            })
        };
        let r = Network::new(cfg).run();
        canceller.join().unwrap();
        assert!(r.cancelled, "{engine}");
        assert!(
            r.cycles.is_multiple_of(CANCEL_BATCH),
            "{engine}: stopped mid-batch at cycle {}",
            r.cycles
        );
        assert!(r.cycles > 0, "{engine}: ran before the cancel landed");
    }
}

#[test]
fn uncancelled_runs_report_not_cancelled() {
    let token = CancelToken::new();
    let r = Network::new(small(0.2).with_cancel(token)).run();
    assert!(!r.cancelled);
    assert!(!r.saturated);
}

fn jobs() -> Vec<JobSpec<NetworkConfig>> {
    let base = NetworkConfig::mesh(4, spec_vc())
        .with_warmup(100)
        .with_sample(150)
        .with_max_cycles(8_000);
    vec![
        JobSpec::new("specvc", base.clone(), base.seed)
            .with_loads(vec![0.1, 0.2, 0.3])
            .with_reps(2),
        JobSpec::new(
            "wh",
            NetworkConfig::mesh(4, RouterKind::Wormhole { buffers: 8 })
                .with_warmup(100)
                .with_sample(150)
                .with_max_cycles(8_000),
            7,
        )
        .with_loads(vec![0.15, 0.25]),
    ]
}

fn sorted(mut recs: Vec<PointRecord>) -> Vec<PointRecord> {
    recs.sort_by_key(|r| r.key);
    recs
}

#[test]
fn result_records_are_identical_across_worker_counts() {
    // The same JobSpecs under core budgets 1, 2, and 5 must produce
    // bit-identical record sets: scheduling affects wall-clock only.
    let jobs = jobs();
    let run_with = |cores: usize| {
        let mut sink = MemorySink::default();
        let out = run_batch(
            &jobs,
            cores,
            &CancelToken::new(),
            &NetworkRunner,
            &HashSet::new(),
            &mut sink,
            |_, _, _| {},
        );
        assert_eq!(out.completed, 8);
        assert!(!out.cancelled);
        sorted(sink.records)
    };
    let serial = run_with(1);
    assert_eq!(serial, run_with(2));
    assert_eq!(serial, run_with(5));
    // And the records really carry distinct seeds per repetition.
    let seeds: HashSet<u64> = serial
        .iter()
        .filter(|r| r.job == "specvc")
        .map(|r| r.seed)
        .collect();
    assert_eq!(seeds.len(), 2);
}

#[test]
fn cancelled_then_resumed_batch_equals_an_uninterrupted_run() {
    let jobs = jobs();

    // Reference: the uninterrupted batch.
    let mut reference = MemorySink::default();
    run_batch(
        &jobs,
        2,
        &CancelToken::new(),
        &NetworkRunner,
        &HashSet::new(),
        &mut reference,
        |_, _, _| {},
    );
    let reference = sorted(reference.records);
    assert_eq!(reference.len(), 8);

    // Interrupted: poison the token after the second completed record.
    let path = temp_jsonl("cancel-resume");
    let cancel = CancelToken::new();
    {
        let mut sink = JsonlSink::open_append(&path).unwrap();
        let outcome = run_batch(
            &jobs,
            2,
            &cancel,
            &NetworkRunner,
            &HashSet::new(),
            &mut sink,
            |done, _, _| {
                if done == 2 {
                    cancel.cancel();
                }
            },
        );
        assert!(outcome.cancelled);
        assert!(outcome.completed >= 2, "the first two records landed");
        assert!(
            outcome.completed < outcome.total,
            "cancellation left work undone ({}/{})",
            outcome.completed,
            outcome.total
        );
    }

    // The partial file is prefix-consistent: every line parses, every
    // key belongs to the batch, no duplicates.
    let text = std::fs::read_to_string(&path).unwrap();
    let partial: Vec<PointRecord> = text
        .lines()
        .map(|l| PointRecord::from_jsonl(l).expect("every written line is a complete record"))
        .collect();
    let mut seen = HashSet::new();
    let expected: HashSet<PointKey> = jobs
        .iter()
        .flat_map(|j| {
            let hash = j.config.config_hash();
            j.points()
                .into_iter()
                .map(move |(seed, load)| PointKey::new(hash, seed, load))
        })
        .collect();
    for rec in &partial {
        assert!(expected.contains(&rec.key), "alien key in partial file");
        assert!(seen.insert(rec.key), "duplicate key in partial file");
    }

    // Resume: reopen, skip completed keys, finish the batch.
    {
        let mut sink = JsonlSink::open_append(&path).unwrap();
        let skip = sink.completed().clone();
        assert_eq!(skip.len(), partial.len());
        let outcome = run_batch(
            &jobs,
            2,
            &CancelToken::new(),
            &NetworkRunner,
            &skip,
            &mut sink,
            |_, _, _| {},
        );
        assert!(!outcome.cancelled);
        assert_eq!(outcome.skipped, partial.len());
        assert_eq!(outcome.completed + outcome.skipped, outcome.total);
    }

    // The union equals the uninterrupted run, record for record.
    let text = std::fs::read_to_string(&path).unwrap();
    let resumed: Vec<PointRecord> = text.lines().filter_map(PointRecord::from_jsonl).collect();
    let resumed = sorted(resumed);
    assert_eq!(resumed.len(), reference.len());
    for (a, b) in resumed.iter().zip(&reference) {
        assert_eq!(a.key, b.key);
        assert_eq!(
            a.latency.map(f64::to_bits),
            b.latency.map(f64::to_bits),
            "resumed batch diverged at {:?}",
            a.key
        );
        assert_eq!(a.accepted.to_bits(), b.accepted.to_bits());
        assert_eq!(a.cycles, b.cycles);
        assert_eq!((a.p50, a.p95, a.p99), (b.p50, b.p95, b.p99));
    }
    let _ = std::fs::remove_file(&path);
}
