//! Empirical validation of the capacity normalization: under uniform
//! random traffic with DOR on a k-ary 2-mesh, the center bisection
//! channels are the hottest and carry ≈ k/4 times the per-node injection
//! rate — the basis of `capacity = 4/k` flits/node/cycle.

use noc_network::{Network, NetworkConfig, RouterKind, TrafficPattern};

fn loaded_network(injection: f64) -> Network {
    let cfg = NetworkConfig::mesh(
        8,
        RouterKind::SpeculativeVc {
            vcs: 2,
            buffers_per_vc: 4,
        },
    )
    .with_injection(injection)
    .with_warmup(0)
    .with_sample(u64::MAX) // never "complete": we just observe
    .with_max_cycles(u64::MAX);
    Network::new(cfg)
}

#[test]
fn center_channels_are_hottest_under_uniform_dor() {
    let mut net = loaded_network(0.4);
    for _ in 0..20_000 {
        net.step();
    }
    let mesh = net.config().mesh;
    let load = net.channel_load();
    let (node, port, hot) = load.hottest(&mesh).expect("traffic flowed");
    // The hottest channel must cross the mesh bisection. Under uniform
    // traffic with DOR both dimensions' center channels carry the same
    // expected load (k/4 x injection), so the winner between an X channel
    // at x = 3|4 and a Y channel at y = 3|4 is a statistical tie — accept
    // either.
    // Even ports point in the positive direction, so the channels that
    // actually cross the bisection are coord 3 going + or coord 4 going -.
    let x = mesh.coord(node, 0);
    let y = mesh.coord(node, 1);
    let crosses = |coord: usize| {
        if port % 2 == 0 {
            coord == 3
        } else {
            coord == 4
        }
    };
    let center_x = port / 2 == 0 && crosses(x);
    let center_y = port / 2 == 1 && crosses(y);
    assert!(
        center_x || center_y,
        "hottest channel at x={x}, y={y}, port={port} (load {hot:.3}) — \
         expected a center bisection channel"
    );
    // Theory: channel load = injection_flits x k/4 = 0.4·0.5·2 = 0.4
    // flits/cycle. Allow generous tolerance for edge effects/warmup.
    assert!(
        (0.28..0.5).contains(&hot),
        "center channel load {hot:.3} vs theoretical 0.4"
    );
}

#[test]
fn channel_load_scales_linearly_below_saturation() {
    let measure = |inj: f64| {
        let mut net = loaded_network(inj);
        for _ in 0..10_000 {
            net.step();
        }
        let mesh = net.config().mesh;
        net.channel_load().hottest(&mesh).unwrap().2
    };
    let low = measure(0.1);
    let high = measure(0.3);
    let ratio = high / low;
    assert!(
        (2.3..3.7).contains(&ratio),
        "tripling injection should ~triple the hottest channel: {low:.3} -> {high:.3}"
    );
}

#[test]
fn nearest_neighbor_loads_only_x_channels() {
    let cfg = NetworkConfig::mesh(4, RouterKind::Wormhole { buffers: 8 })
        .with_pattern(TrafficPattern::NearestNeighbor)
        .with_injection(0.2)
        .with_warmup(0)
        .with_sample(u64::MAX)
        .with_max_cycles(u64::MAX);
    let mut net = Network::new(cfg);
    for _ in 0..5_000 {
        net.step();
    }
    let mesh = net.config().mesh;
    let load = net.channel_load();
    for node in 0..mesh.nodes() {
        // Y-dimension channels (ports 2 and 3) never carry NN traffic.
        assert_eq!(load.count(node, 2), 0, "node {node} +Y");
        assert_eq!(load.count(node, 3), 0, "node {node} -Y");
    }
    let (_, port, _) = load.hottest(&mesh).unwrap();
    assert!(port < 2, "hottest must be an X channel");
}
