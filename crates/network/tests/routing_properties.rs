//! Property tests for the deadlock-freedom plumbing: the dateline VC
//! masks that make dimension-ordered routing safe on a torus, and the
//! west-first turn-model candidates on a mesh.
//!
//! These are the two places a routing bug turns into a hung simulation
//! rather than a wrong number: a mask that forbids every VC stalls a
//! packet forever (the router asserts on it), and a non-productive or
//! empty candidate set breaks minimal-routing termination.

use noc_network::routing::{
    dateline_vc_mask, dimension_ordered, negative_first_candidates, west_first_candidates,
};
use noc_network::Mesh;
use proptest::prelude::*;

/// The mask of all `vcs` VCs (what "no restriction" looks like).
fn full_mask(vcs: usize) -> u64 {
    if vcs >= 64 {
        u64::MAX
    } else {
        (1u64 << vcs) - 1
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On a torus, every (current, dest, out_port) the router can reach
    /// via dimension-ordered routing yields a dateline mask that permits
    /// at least one in-range VC — and never a VC outside the configured
    /// range. An all-zero (or out-of-range-only) mask would strand the
    /// packet in VC allocation forever.
    #[test]
    fn dateline_mask_never_forbids_every_vc(
        radix in 2usize..9,
        dims in 2usize..4,
        vcs in 2usize..9,
    ) {
        let t = Mesh::new(radix, dims).into_torus();
        for current in 0..t.nodes() {
            for dest in 0..t.nodes() {
                let port = dimension_ordered(&t, current, dest);
                let mask = dateline_vc_mask(&t, current, port, dest, vcs);
                prop_assert!(
                    mask & full_mask(vcs) != 0,
                    "all VCs masked: radix={radix} dims={dims} vcs={vcs} \
                     current={current} dest={dest} port={port} mask={mask:#b}"
                );
                prop_assert_eq!(
                    mask & !full_mask(vcs), 0,
                    "mask {:#b} permits VCs beyond the {} configured", mask, vcs
                );
            }
        }
    }

    /// On a mesh the dateline machinery must be inert: every mask is the
    /// full mask, for every port the routing function can produce.
    #[test]
    fn dateline_mask_is_inert_on_mesh(
        radix in 2usize..9,
        dims in 2usize..4,
        vcs in 1usize..9,
    ) {
        let m = Mesh::new(radix, dims);
        for current in 0..m.nodes() {
            for dest in 0..m.nodes() {
                let port = dimension_ordered(&m, current, dest);
                prop_assert_eq!(
                    dateline_vc_mask(&m, current, port, dest, vcs),
                    full_mask(vcs)
                );
            }
        }
    }

    /// West-first candidates exist for every (current, dest) pair on a
    /// 2-D mesh and every candidate makes minimal progress: one hop
    /// through it strictly decreases the distance to the destination.
    /// The only exception is the arrived packet, which gets exactly the
    /// local (ejection) port.
    #[test]
    fn west_first_candidates_nonempty_and_minimal(radix in 2usize..10) {
        let m = Mesh::new(radix, 2);
        for current in 0..m.nodes() {
            for dest in 0..m.nodes() {
                let cands = west_first_candidates(&m, current, dest);
                prop_assert!(!cands.is_empty(), "no candidates {current}->{dest}");
                if current == dest {
                    prop_assert_eq!(&cands, &vec![m.local_port()]);
                    continue;
                }
                for &port in &cands {
                    prop_assert_ne!(
                        port, m.local_port(),
                        "premature ejection {}->{}", current, dest
                    );
                    let next = m
                        .neighbor(current, port)
                        .expect("candidate leaves the mesh");
                    prop_assert_eq!(
                        m.distance(next, dest) + 1,
                        m.distance(current, dest),
                        "non-minimal candidate {}->{} via port {}", current, dest, port
                    );
                }
            }
        }
    }

    /// Negative-first candidates exist for every (current, dest) pair on
    /// a mesh of any dimension count, and every candidate makes minimal
    /// progress — the n-D generalization of the west-first properties
    /// above.
    #[test]
    fn negative_first_candidates_nonempty_and_minimal(
        radix in 2usize..7,
        dims in 1usize..4,
    ) {
        let m = Mesh::new(radix, dims);
        for current in 0..m.nodes() {
            for dest in 0..m.nodes() {
                let cands = negative_first_candidates(&m, current, dest);
                prop_assert!(!cands.is_empty(), "no candidates {current}->{dest}");
                if current == dest {
                    prop_assert_eq!(&cands, &vec![m.local_port()]);
                    continue;
                }
                for &port in &cands {
                    prop_assert_ne!(
                        port, m.local_port(),
                        "premature ejection {}->{}", current, dest
                    );
                    let next = m
                        .neighbor(current, port)
                        .expect("candidate leaves the mesh");
                    prop_assert_eq!(
                        m.distance(next, dest) + 1,
                        m.distance(current, dest),
                        "non-minimal candidate {}->{} via port {}", current, dest, port
                    );
                }
            }
        }
    }

    /// The negative-first invariant that makes the turn model
    /// deadlock-free in any dimension count: while *any* dimension still
    /// needs a negative correction, only negative-direction ports are
    /// offered (no positive→negative turn can ever be needed).
    #[test]
    fn negative_first_exhausts_negative_hops_first(
        radix in 2usize..7,
        dims in 1usize..4,
    ) {
        let m = Mesh::new(radix, dims);
        for current in 0..m.nodes() {
            for dest in 0..m.nodes() {
                let needs_negative = (0..dims)
                    .any(|d| m.coord(dest, d) < m.coord(current, d));
                let cands = negative_first_candidates(&m, current, dest);
                if needs_negative {
                    prop_assert!(
                        cands.iter().all(|&p| p < m.local_port() && p % 2 == 1),
                        "positive port offered while negative hops remain: \
                         {current}->{dest} {cands:?}"
                    );
                } else if current != dest {
                    prop_assert!(
                        cands.iter().all(|&p| p < m.local_port() && p % 2 == 0),
                        "negative port in positive phase: {current}->{dest} {cands:?}"
                    );
                }
            }
        }
    }

    /// The west-first invariant that makes the turn model deadlock-free:
    /// whenever the destination lies to the west, the *only* candidate is
    /// the west port (no south/north turns before the westward hops are
    /// done).
    #[test]
    fn west_first_routes_west_first(radix in 2usize..10) {
        let m = Mesh::new(radix, 2);
        for current in 0..m.nodes() {
            for dest in 0..m.nodes() {
                if m.coord(dest, 0) < m.coord(current, 0) {
                    prop_assert_eq!(
                        west_first_candidates(&m, current, dest),
                        vec![m.port(0, false)],
                        "{} -> {}", current, dest
                    );
                }
            }
        }
    }
}

/// Exhaustive dateline-class walk on a 3-D torus: following
/// dimension-ordered routing hop by hop, and *within each ring* (the
/// class restriction is per-dimension), the permitted class may switch
/// from 0 (pre-dateline) to 1 (post-dateline) at most once and never
/// back, and every mask selects exactly one class — the
/// acyclic-dependency argument in ring form.
#[test]
fn dateline_classes_switch_at_most_once_per_ring_in_three_dims() {
    let t = Mesh::new(4, 3).into_torus();
    let vcs = 4;
    let low = full_mask(vcs / 2);
    let high = full_mask(vcs) & !low;
    for src in 0..t.nodes() {
        for dest in 0..t.nodes() {
            let mut cur = src;
            let mut ring: Option<usize> = None; // dimension being corrected
            let mut switched = false;
            let mut hops = 0;
            loop {
                let port = dimension_ordered(&t, cur, dest);
                if port == t.local_port() {
                    break;
                }
                let dim = port / 2;
                if ring != Some(dim) {
                    // New ring: the class restriction starts over.
                    ring = Some(dim);
                    switched = false;
                }
                let mask = dateline_vc_mask(&t, cur, port, dest, vcs);
                assert!(
                    mask == low || mask == high,
                    "mask {mask:#b} spans classes at {cur} -> {dest}"
                );
                if mask == high {
                    switched = true;
                }
                assert!(
                    !(switched && mask == low),
                    "class dropped back to 0 within a ring on {src} -> {dest}"
                );
                cur = t.neighbor(cur, port).expect("torus is fully wired");
                hops += 1;
                assert!(hops <= t.nodes(), "routing loop {src} -> {dest}");
            }
            assert_eq!(cur, dest);
        }
    }
}
