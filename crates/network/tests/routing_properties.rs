//! Property tests for the deadlock-freedom plumbing: the dateline VC
//! masks that make dimension-ordered routing safe on a torus, and the
//! west-first turn-model candidates on a mesh.
//!
//! These are the two places a routing bug turns into a hung simulation
//! rather than a wrong number: a mask that forbids every VC stalls a
//! packet forever (the router asserts on it), and a non-productive or
//! empty candidate set breaks minimal-routing termination.

use noc_network::config::RoutingAlgo;
use noc_network::routing::{
    dateline_vc_mask, dimension_ordered, negative_first_candidates, west_first_candidates,
    MAX_CANDIDATES,
};
use noc_network::{parse_faults, FaultModel, Mesh, NetworkConfig, RouteTable, RouterKind};
use proptest::prelude::*;

/// The mask of all `vcs` VCs (what "no restriction" looks like).
fn full_mask(vcs: usize) -> u64 {
    if vcs >= 64 {
        u64::MAX
    } else {
        (1u64 << vcs) - 1
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On a torus, every (current, dest, out_port) the router can reach
    /// via dimension-ordered routing yields a dateline mask that permits
    /// at least one in-range VC — and never a VC outside the configured
    /// range. An all-zero (or out-of-range-only) mask would strand the
    /// packet in VC allocation forever.
    #[test]
    fn dateline_mask_never_forbids_every_vc(
        radix in 2usize..9,
        dims in 2usize..4,
        vcs in 2usize..9,
    ) {
        let t = Mesh::new(radix, dims).into_torus();
        for current in 0..t.nodes() {
            for dest in 0..t.nodes() {
                let port = dimension_ordered(&t, current, dest);
                let mask = dateline_vc_mask(&t, current, port, dest, vcs);
                prop_assert!(
                    mask & full_mask(vcs) != 0,
                    "all VCs masked: radix={radix} dims={dims} vcs={vcs} \
                     current={current} dest={dest} port={port} mask={mask:#b}"
                );
                prop_assert_eq!(
                    mask & !full_mask(vcs), 0,
                    "mask {:#b} permits VCs beyond the {} configured", mask, vcs
                );
            }
        }
    }

    /// On a mesh the dateline machinery must be inert: every mask is the
    /// full mask, for every port the routing function can produce.
    #[test]
    fn dateline_mask_is_inert_on_mesh(
        radix in 2usize..9,
        dims in 2usize..4,
        vcs in 1usize..9,
    ) {
        let m = Mesh::new(radix, dims);
        for current in 0..m.nodes() {
            for dest in 0..m.nodes() {
                let port = dimension_ordered(&m, current, dest);
                prop_assert_eq!(
                    dateline_vc_mask(&m, current, port, dest, vcs),
                    full_mask(vcs)
                );
            }
        }
    }

    /// West-first candidates exist for every (current, dest) pair on a
    /// 2-D mesh and every candidate makes minimal progress: one hop
    /// through it strictly decreases the distance to the destination.
    /// The only exception is the arrived packet, which gets exactly the
    /// local (ejection) port.
    #[test]
    fn west_first_candidates_nonempty_and_minimal(radix in 2usize..10) {
        let m = Mesh::new(radix, 2);
        for current in 0..m.nodes() {
            for dest in 0..m.nodes() {
                let cands = west_first_candidates(&m, current, dest);
                prop_assert!(!cands.is_empty(), "no candidates {current}->{dest}");
                if current == dest {
                    prop_assert_eq!(&cands, &vec![m.local_port()]);
                    continue;
                }
                for &port in &cands {
                    prop_assert_ne!(
                        port, m.local_port(),
                        "premature ejection {}->{}", current, dest
                    );
                    let next = m
                        .neighbor(current, port)
                        .expect("candidate leaves the mesh");
                    prop_assert_eq!(
                        m.distance(next, dest) + 1,
                        m.distance(current, dest),
                        "non-minimal candidate {}->{} via port {}", current, dest, port
                    );
                }
            }
        }
    }

    /// Negative-first candidates exist for every (current, dest) pair on
    /// a mesh of any dimension count, and every candidate makes minimal
    /// progress — the n-D generalization of the west-first properties
    /// above.
    #[test]
    fn negative_first_candidates_nonempty_and_minimal(
        radix in 2usize..7,
        dims in 1usize..4,
    ) {
        let m = Mesh::new(radix, dims);
        for current in 0..m.nodes() {
            for dest in 0..m.nodes() {
                let cands = negative_first_candidates(&m, current, dest);
                prop_assert!(!cands.is_empty(), "no candidates {current}->{dest}");
                if current == dest {
                    prop_assert_eq!(&cands, &vec![m.local_port()]);
                    continue;
                }
                for &port in &cands {
                    prop_assert_ne!(
                        port, m.local_port(),
                        "premature ejection {}->{}", current, dest
                    );
                    let next = m
                        .neighbor(current, port)
                        .expect("candidate leaves the mesh");
                    prop_assert_eq!(
                        m.distance(next, dest) + 1,
                        m.distance(current, dest),
                        "non-minimal candidate {}->{} via port {}", current, dest, port
                    );
                }
            }
        }
    }

    /// The negative-first invariant that makes the turn model
    /// deadlock-free in any dimension count: while *any* dimension still
    /// needs a negative correction, only negative-direction ports are
    /// offered (no positive→negative turn can ever be needed).
    #[test]
    fn negative_first_exhausts_negative_hops_first(
        radix in 2usize..7,
        dims in 1usize..4,
    ) {
        let m = Mesh::new(radix, dims);
        for current in 0..m.nodes() {
            for dest in 0..m.nodes() {
                let needs_negative = (0..dims)
                    .any(|d| m.coord(dest, d) < m.coord(current, d));
                let cands = negative_first_candidates(&m, current, dest);
                if needs_negative {
                    prop_assert!(
                        cands.iter().all(|&p| p < m.local_port() && p % 2 == 1),
                        "positive port offered while negative hops remain: \
                         {current}->{dest} {cands:?}"
                    );
                } else if current != dest {
                    prop_assert!(
                        cands.iter().all(|&p| p < m.local_port() && p % 2 == 0),
                        "negative port in positive phase: {current}->{dest} {cands:?}"
                    );
                }
            }
        }
    }

    /// The west-first invariant that makes the turn model deadlock-free:
    /// whenever the destination lies to the west, the *only* candidate is
    /// the west port (no south/north turns before the westward hops are
    /// done).
    #[test]
    fn west_first_routes_west_first(radix in 2usize..10) {
        let m = Mesh::new(radix, 2);
        for current in 0..m.nodes() {
            for dest in 0..m.nodes() {
                if m.coord(dest, 0) < m.coord(current, 0) {
                    prop_assert_eq!(
                        west_first_candidates(&m, current, dest),
                        vec![m.port(0, false)],
                        "{} -> {}", current, dest
                    );
                }
            }
        }
    }
}

/// Builds a [`FaultModel`] over a 2-D mesh from dead-link picks,
/// returning the model, the route table, and the set of killed
/// directed links. Picks that point off the mesh edge are discarded;
/// a guaranteed center-link kill keeps the plan non-empty.
fn dead_link_model(
    mesh: Mesh,
    algo: RoutingAlgo,
    picks: &[(usize, usize, u64)],
) -> (
    FaultModel,
    RouteTable,
    std::collections::HashSet<(usize, usize)>,
) {
    let mut specs = Vec::new();
    let mut dead = std::collections::HashSet::new();
    for &(n, p, c) in picks {
        let node = n % mesh.nodes();
        if mesh.neighbor(node, p).is_some() && dead.insert((node, p)) {
            specs.push(format!("link:{node}:{p}:dead@{c}"));
        }
    }
    if specs.is_empty() {
        let center = mesh.radix() + 1; // (1, 1): all four dim ports wired
        specs.push(format!("link:{center}:0:dead@100"));
        dead.insert((center, 0));
    }
    let cfg = NetworkConfig::for_mesh(
        mesh,
        RouterKind::SpeculativeVc {
            vcs: 2,
            buffers_per_vc: 4,
        },
    )
    .with_routing(algo)
    .with_faults(parse_faults(&specs.join(",")).expect("generated specs parse"));
    cfg.validate().expect("generated fault plan validates");
    let table = RouteTable::new(&mesh, algo, 2);
    let fm = FaultModel::new(&cfg, &table).expect("non-empty plan compiles");
    (fm, table, dead)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Under a random set of permanent link kills, fault-aware routing
    /// keeps every still-connected pair deliverable and every
    /// disconnected pair refused — never spun on. Walking the filtered
    /// route function from any source must (a) reach a reachable
    /// destination in minimal hops without ever entering a dead link,
    /// staying inside the base turn-model candidate set (the
    /// deadlock-freedom argument: a subset of an acyclic turn set is
    /// acyclic); and (b) immediately resolve to the local port for an
    /// unreachable destination. Epoch 0 — before any kill fires — must
    /// match the healthy table decision for decision.
    #[test]
    fn dead_fault_sets_reroute_or_refuse_never_spin(
        radix in 3usize..6,
        algo_idx in 0usize..3,
        picks in proptest::collection::vec((0usize..36, 0usize..4, 1u64..2000), 1..4),
        selector in 0u64..6,
    ) {
        let algo = [
            RoutingAlgo::DimensionOrdered,
            RoutingAlgo::WestFirstAdaptive,
            RoutingAlgo::NegativeFirstAdaptive,
        ][algo_idx];
        let mesh = Mesh::new(radix, 2);
        let nodes = mesh.nodes();
        let local = mesh.local_port();
        let (fm, table, dead) = dead_link_model(mesh, algo, &picks);
        let last = fm.epochs() - 1;
        let mut cands = [0u8; MAX_CANDIDATES];
        for src in 0..nodes {
            for dst in 0..nodes {
                prop_assert_eq!(
                    fm.route(&table, 0, src, dst, selector),
                    table.route(src, dst, selector),
                    "epoch 0 diverges from the healthy table {}->{}", src, dst
                );
                if !fm.reachable(last, src, dst) {
                    prop_assert_eq!(
                        fm.route(&table, last, src, dst, selector), local,
                        "unreachable pair {}->{} must refuse, not wander", src, dst
                    );
                    continue;
                }
                let mut cur = src;
                let mut hops = 0u64;
                while cur != dst {
                    let port = fm.route(&table, last, cur, dst, selector + hops);
                    prop_assert_ne!(
                        port, local,
                        "stranded a reachable pair {}->{} at {}", src, dst, cur
                    );
                    prop_assert!(
                        !dead.contains(&(cur, port)),
                        "routed into dead link ({cur}, {port}) on {src}->{dst}"
                    );
                    let n = table.candidates_into(cur, dst, &mut cands);
                    prop_assert!(
                        cands[..n].contains(&(port as u8)),
                        "filtered route left the turn-model set at {cur} on {src}->{dst}"
                    );
                    let next = mesh.neighbor(cur, port).expect("route off the mesh");
                    prop_assert_eq!(
                        mesh.distance(next, dst) + 1,
                        mesh.distance(cur, dst),
                        "non-minimal hop at {} on {}->{}", cur, src, dst
                    );
                    cur = next;
                    hops += 1;
                    prop_assert!(hops <= nodes as u64, "routing loop {}->{}", src, dst);
                }
            }
        }
        // The per-run counter agrees with the reachability bitset.
        let mut expect = 0u64;
        for s in 0..nodes {
            for d in 0..nodes {
                if s != d && !fm.reachable(last, s, d) {
                    expect += 1;
                }
            }
        }
        prop_assert_eq!(fm.unreachable_pairs(u64::MAX), expect);
    }

    /// Flaky and lossy links are data-plane faults only: they never
    /// create a kill epoch, so the routing overlay stays empty and
    /// every decision matches the healthy table bit for bit.
    #[test]
    fn transient_faults_never_change_routing(
        radix in 3usize..6,
        node in 0usize..25,
        port in 0usize..4,
        selector in 0u64..6,
    ) {
        let mesh = Mesh::new(radix, 2);
        let mut node = node % mesh.nodes();
        if mesh.neighbor(node, port).is_none() {
            node = mesh.radix() + 1; // (1, 1): all four dim ports wired
        }
        let cfg = NetworkConfig::for_mesh(
            mesh,
            RouterKind::SpeculativeVc { vcs: 2, buffers_per_vc: 4 },
        )
        .with_faults(
            parse_faults(&format!("link:{node}:{port}:flaky@50/10, link:{node}:{port}:loss@0.3"))
                .expect("specs parse"),
        );
        let table = RouteTable::new(&mesh, cfg.routing, 2);
        let fm = FaultModel::new(&cfg, &table).expect("non-empty plan");
        prop_assert_eq!(fm.epochs(), 1, "no kills, no epochs");
        prop_assert_eq!(fm.unreachable_pairs(u64::MAX), 0);
        for src in 0..mesh.nodes() {
            for dst in 0..mesh.nodes() {
                prop_assert_eq!(
                    fm.route(&table, 0, src, dst, selector),
                    table.route(src, dst, selector)
                );
            }
        }
    }
}

/// Exhaustive dateline-class walk on a 3-D torus: following
/// dimension-ordered routing hop by hop, and *within each ring* (the
/// class restriction is per-dimension), the permitted class may switch
/// from 0 (pre-dateline) to 1 (post-dateline) at most once and never
/// back, and every mask selects exactly one class — the
/// acyclic-dependency argument in ring form.
#[test]
fn dateline_classes_switch_at_most_once_per_ring_in_three_dims() {
    let t = Mesh::new(4, 3).into_torus();
    let vcs = 4;
    let low = full_mask(vcs / 2);
    let high = full_mask(vcs) & !low;
    for src in 0..t.nodes() {
        for dest in 0..t.nodes() {
            let mut cur = src;
            let mut ring: Option<usize> = None; // dimension being corrected
            let mut switched = false;
            let mut hops = 0;
            loop {
                let port = dimension_ordered(&t, cur, dest);
                if port == t.local_port() {
                    break;
                }
                let dim = port / 2;
                if ring != Some(dim) {
                    // New ring: the class restriction starts over.
                    ring = Some(dim);
                    switched = false;
                }
                let mask = dateline_vc_mask(&t, cur, port, dest, vcs);
                assert!(
                    mask == low || mask == high,
                    "mask {mask:#b} spans classes at {cur} -> {dest}"
                );
                if mask == high {
                    switched = true;
                }
                assert!(
                    !(switched && mask == low),
                    "class dropped back to 0 within a ring on {src} -> {dest}"
                );
                cur = t.neighbor(cur, port).expect("torus is fully wired");
                hops += 1;
                assert!(hops <= t.nodes(), "routing loop {src} -> {dest}");
            }
            assert_eq!(cur, dest);
        }
    }
}
